// Tests for features beyond the minimal paper pipeline: routing snapshots
// (fault tolerance), chains longer than two stages, and the multi-field
// synthetic workload that drives them.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/manager.hpp"
#include "core/advisor.hpp"
#include "core/snapshot.hpp"
#include "runtime/engine.hpp"
#include "sim/simulator.hpp"
#include "sketch/exact_counter.hpp"
#include "workload/synthetic.hpp"

namespace lar {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- snapshot persistence -----------------------------------------------------

core::ReconfigurationPlan sample_plan(std::uint32_t n) {
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  core::Manager mgr(topo, place, {});
  std::vector<core::PairCount> pairs;
  for (std::uint32_t i = 0; i < 40; ++i) {
    pairs.push_back(core::PairCount{i, 1000 + i, 10 + i});
  }
  return mgr.compute_plan({core::HopStats{1, 2, pairs}});
}

TEST(Snapshot, RoundTripPreservesTables) {
  const std::string path = temp_path("lar_snapshot_roundtrip.larp");
  const auto plan = sample_plan(4);
  ASSERT_TRUE(core::save_plan(plan, path).is_ok());

  auto restored = core::load_plan(path);
  ASSERT_TRUE(restored.is_ok());
  const auto& r = restored.value();
  EXPECT_EQ(r.version, plan.version);
  EXPECT_EQ(r.keys_assigned, plan.keys_assigned);
  EXPECT_DOUBLE_EQ(r.expected_locality, plan.expected_locality);
  ASSERT_EQ(r.tables.size(), plan.tables.size());
  for (const auto& [op, table] : plan.tables) {
    ASSERT_TRUE(r.tables.contains(op));
    const auto& rt = r.tables.at(op);
    EXPECT_EQ(rt->version(), table->version());
    EXPECT_EQ(rt->size(), table->size());
    for (const auto& [key, inst] : table->sorted_entries()) {
      EXPECT_EQ(rt->lookup(key).value(), inst);
    }
  }
  std::filesystem::remove(path);
}

// Serialized plans are canonical: two tables with the same (key -> instance)
// content must produce byte-identical snapshot files no matter in which order
// they were populated (sorted_entries() is the only table iteration).
TEST(Snapshot, SerializationIsOrderStable) {
  auto read_all = [](const std::string& p) {
    std::string bytes;
    std::FILE* f = std::fopen(p.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
    std::fclose(f);
    return bytes;
  };

  auto forward = std::make_shared<RoutingTable>();
  auto scrambled = std::make_shared<RoutingTable>();
  forward->set_version(3);
  scrambled->set_version(3);
  for (Key k = 0; k < 200; ++k) {
    forward->assign(k * 7, static_cast<InstanceIndex>(k % 5));
  }
  // Same content, reversed insertion order plus overwrite churn.
  for (Key k = 200; k-- > 0;) {
    scrambled->assign(k * 7, static_cast<InstanceIndex>((k + 1) % 5));
  }
  for (Key k = 0; k < 200; ++k) {
    scrambled->assign(k * 7, static_cast<InstanceIndex>(k % 5));
  }

  core::ReconfigurationPlan a;
  a.version = 3;
  a.tables.emplace(1, forward);
  core::ReconfigurationPlan b;
  b.version = 3;
  b.tables.emplace(1, scrambled);

  const std::string pa = temp_path("lar_snapshot_order_a.larp");
  const std::string pb = temp_path("lar_snapshot_order_b.larp");
  ASSERT_TRUE(core::save_plan(a, pa).is_ok());
  ASSERT_TRUE(core::save_plan(b, pb).is_ok());
  EXPECT_EQ(read_all(pa), read_all(pb));
  std::filesystem::remove(pa);
  std::filesystem::remove(pb);
}

TEST(Snapshot, MissingFileIsNotFound) {
  const auto r = core::load_plan("/nonexistent/dir/x.larp");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(Snapshot, GarbageFileRejected) {
  const std::string path = temp_path("lar_snapshot_garbage.larp");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fwrite("garbage bytes here", 1, 18, f);
    std::fclose(f);
  }
  const auto r = core::load_plan(path);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(Snapshot, ManagerSavesBeforeDeployAndRestores) {
  const std::string path = temp_path("lar_snapshot_manager.larp");
  std::filesystem::remove(path);
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  core::ManagerOptions opts;
  opts.snapshot_path = path;

  std::vector<core::PairCount> pairs;
  for (std::uint32_t i = 0; i < 30; ++i) {
    pairs.push_back(core::PairCount{i, 500 + i, 20});
  }
  std::uint64_t first_version = 0;
  {
    core::Manager mgr(topo, place, opts);
    const auto plan = mgr.compute_plan({core::HopStats{1, 2, pairs}});
    first_version = plan.version;
    // Snapshot written during compute_plan — BEFORE mark_deployed.
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  // "Restart" the manager; it must recover the deployed configuration and
  // derive the next plan's migrations against it (=> no moves for identical
  // statistics).
  core::Manager restarted(topo, place, opts);
  const auto restored = restarted.restore_from_snapshot();
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value().version, first_version);
  const auto next = restarted.compute_plan({core::HopStats{1, 2, pairs}});
  EXPECT_GT(next.version, first_version);
  EXPECT_EQ(next.total_moves(), 0u);
  std::filesystem::remove(path);
}

TEST(Snapshot, RestoreWithoutPathFails) {
  const Topology topo = make_two_stage_topology(2);
  const Placement place = Placement::round_robin(topo, 2);
  core::Manager mgr(topo, place, {});
  const auto r = mgr.restore_from_snapshot();
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kFailedPrecondition);
}

// --- chain topologies -----------------------------------------------------------

TEST(Chain, FactoryBuildsValidChains) {
  for (const std::uint32_t stages : {1u, 2u, 3u, 5u}) {
    const Topology t = make_chain_topology(stages, 4);
    EXPECT_TRUE(t.validate().is_ok());
    EXPECT_EQ(t.num_operators(), stages + 1);
    EXPECT_EQ(t.edges().size(), stages);
    for (std::uint32_t k = 0; k < stages; ++k) {
      EXPECT_EQ(t.edges()[k].key_field, k);
      EXPECT_EQ(t.edges()[k].grouping, GroupingType::kFields);
    }
  }
}

TEST(Chain, TwoStageFactoryIsTheTwoStageChain) {
  const Topology a = make_two_stage_topology(3);
  const Topology b = make_chain_topology(2, 3);
  EXPECT_EQ(a.num_operators(), b.num_operators());
  EXPECT_EQ(a.edges().size(), b.edges().size());
}

TEST(Chain, MultiFieldSyntheticCorrelatesPerHop) {
  workload::SyntheticGenerator gen({.num_values = 10, .locality = 0.7,
                                    .padding = 0, .seed = 3,
                                    .num_fields = 4});
  int hop_equal[3] = {0, 0, 0};
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const Tuple t = gen.next();
    ASSERT_EQ(t.fields.size(), 4u);
    for (int f = 0; f < 4; ++f) {
      ASSERT_GE(t.fields[f], static_cast<Key>(f) * 10);
      ASSERT_LT(t.fields[f], static_cast<Key>(f + 1) * 10);
    }
    for (int h = 0; h < 3; ++h) {
      hop_equal[h] += (t.fields[h + 1] - 10 == t.fields[h]);
    }
  }
  for (int h = 0; h < 3; ++h) {
    EXPECT_NEAR(hop_equal[h] / static_cast<double>(n), 0.7, 0.02) << h;
  }
}

TEST(Chain, ManagerStitchesMultiHopGraphAndOptimizesBothHops) {
  // Three stateful stages: the optimizer sees hops A->B and B->C, sharing
  // B's keys; with identity-correlated data, both hops become local.
  const std::uint32_t n = 4;
  const Topology topo = make_chain_topology(3, n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  workload::SyntheticGenerator gen({.num_values = n * 40, .locality = 0.9,
                                    .padding = 0, .seed = 5,
                                    .num_fields = 3});
  const auto before = simulator.run_window(gen, 60'000);
  EXPECT_LT(before.edge_locality[1], 0.4);
  EXPECT_LT(before.edge_locality[2], 0.4);
  const auto plan = simulator.reconfigure(manager);
  EXPECT_GT(plan.expected_locality, 0.75);
  const auto after = simulator.run_window(gen, 60'000);
  EXPECT_GT(after.edge_locality[1], 0.8);  // A->B
  EXPECT_GT(after.edge_locality[2], 0.8);  // B->C
}

TEST(Chain, RuntimeReconfigurationPreservesStateAcrossThreeStages) {
  const std::uint32_t n = 3;
  const Topology topo = make_chain_topology(3, n);
  const Placement place = Placement::round_robin(topo, n);
  runtime::Engine engine(
      topo, place,
      [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
        if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
        return std::make_unique<runtime::CountingOperator>(op - 1);
      },
      {.fields_mode = FieldsRouting::kTable});
  engine.start();
  core::Manager manager(topo, place, {});
  workload::SyntheticGenerator gen({.num_values = 60, .locality = 0.8,
                                    .padding = 0, .seed = 7,
                                    .num_fields = 3});
  sketch::ExactCounter<Key> truth[3];
  auto pump = [&](int count) {
    for (int i = 0; i < count; ++i) {
      Tuple t = gen.next();
      for (int f = 0; f < 3; ++f) truth[f].add(t.fields[f]);
      engine.inject(std::move(t));
    }
  };
  pump(15'000);
  engine.flush();
  const auto plan = engine.reconfigure(manager);
  EXPECT_GT(plan.total_moves(), 0u);
  pump(15'000);
  engine.flush();
  // Every stage's per-key counts are exact and keys live on one instance.
  for (OperatorId op = 1; op <= 3; ++op) {
    for (const auto& entry : truth[op - 1].entries()) {
      std::uint64_t sum = 0;
      int holders = 0;
      for (InstanceIndex i = 0; i < n; ++i) {
        const auto c = static_cast<runtime::CountingOperator&>(
                           engine.operator_at(op, i))
                           .count(entry.key);
        sum += c;
        holders += (c > 0);
      }
      ASSERT_EQ(sum, entry.count) << "op " << op << " key " << entry.key;
      ASSERT_EQ(holders, 1) << "op " << op << " key " << entry.key;
    }
  }
  engine.shutdown();
}

TEST(Chain, LongChainWaveTerminates) {
  // Five stateful stages: the PROPAGATE wave must traverse the whole chain
  // and complete even with several thousand key moves.
  const std::uint32_t n = 2;
  const Topology topo = make_chain_topology(5, n);
  const Placement place = Placement::round_robin(topo, n);
  runtime::Engine engine(
      topo, place,
      [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
        if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
        return std::make_unique<runtime::CountingOperator>(op - 1);
      },
      {.fields_mode = FieldsRouting::kTable});
  engine.start();
  core::Manager manager(topo, place, {});
  workload::SyntheticGenerator gen({.num_values = 40, .locality = 0.9,
                                    .padding = 0, .seed = 9,
                                    .num_fields = 5});
  for (int i = 0; i < 10'000; ++i) engine.inject(gen.next());
  engine.flush();
  const auto plan = engine.reconfigure(manager);
  EXPECT_FALSE(plan.tables.empty());
  for (int i = 0; i < 5'000; ++i) engine.inject(gen.next());
  engine.flush();
  engine.shutdown();
}

// --- statistics anchors (Figure 3 topologies) -----------------------------------

Topology figure3_topology(std::uint32_t n) {
  Topology t;
  const auto s = t.add_operator({.name = "S", .parallelism = n,
                                 .is_source = true,
                                 .cpu_cost_per_tuple = 0.05});
  const auto b = t.add_operator({.name = "B", .parallelism = n, .stateful = true});
  const auto c = t.add_operator({.name = "C", .parallelism = n});
  const auto d = t.add_operator({.name = "D", .parallelism = n, .stateful = true});
  t.connect(s, b, GroupingType::kFields, 0);
  t.connect(b, c, GroupingType::kLocalOrShuffle);
  t.connect(c, d, GroupingType::kFields, 1);
  LAR_CHECK(t.validate().is_ok());
  return t;
}

TEST(Anchors, StatelessRelaysInheritTheUpstreamAnchor) {
  const Topology t = figure3_topology(2);
  const auto anchors = compute_stats_anchors(t);
  EXPECT_FALSE(anchors[0].has_value());  // source: nothing upstream
  EXPECT_EQ(anchors[1].value(), 1u);     // B: fields input, its own anchor
  EXPECT_EQ(anchors[2].value(), 1u);     // C: inherits B through l-o-s
  EXPECT_EQ(anchors[3].value(), 3u);     // D: fields input re-anchors
}

TEST(Anchors, AmbiguousFanInHasNoAnchor) {
  // Two different stateful operators feed one stateless join via shuffle:
  // its tuples carry keys of different operators, so it must not record.
  Topology t;
  const auto s = t.add_operator({.name = "s", .parallelism = 1, .is_source = true});
  const auto a = t.add_operator({.name = "a", .parallelism = 2, .stateful = true});
  const auto b = t.add_operator({.name = "b", .parallelism = 2, .stateful = true});
  const auto j = t.add_operator({.name = "j", .parallelism = 2});
  t.connect(s, a, GroupingType::kFields, 0);
  t.connect(s, b, GroupingType::kFields, 1);
  t.connect(a, j, GroupingType::kShuffle);
  t.connect(b, j, GroupingType::kShuffle);
  ASSERT_TRUE(t.validate().is_ok());
  const auto anchors = compute_stats_anchors(t);
  EXPECT_FALSE(anchors[j].has_value());
  EXPECT_EQ(anchors[a].value(), a);
  EXPECT_EQ(anchors[b].value(), b);
}

TEST(Anchors, Figure3HopIsOptimizableAcrossTheStatelessRelay) {
  // The key property: correlations between B's and D's keys survive the
  // stateless local-or-shuffle hop, and reconfiguration improves C->D.
  const std::uint32_t n = 3;
  const Topology topo = figure3_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  core::Manager manager(topo, place, {});
  ASSERT_EQ(manager.optimizable_hops().size(), 1u);
  EXPECT_EQ(manager.optimizable_hops()[0].to, 3u);  // the C->D edge

  runtime::Engine engine(
      topo, place,
      [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
        if (op == 1) return std::make_unique<runtime::CountingOperator>(0);
        if (op == 3) return std::make_unique<runtime::CountingOperator>(1);
        return std::make_unique<runtime::PassThroughOperator>();
      },
      {.fields_mode = FieldsRouting::kTable});
  engine.start();
  workload::SyntheticGenerator gen({.num_values = 60, .locality = 0.9,
                                    .padding = 0, .seed = 13});
  sketch::ExactCounter<Key> truth_d;
  auto pump = [&](int count) {
    for (int i = 0; i < count; ++i) {
      Tuple t = gen.next();
      truth_d.add(t.fields[1]);
      engine.inject(std::move(t));
    }
  };
  pump(20'000);
  engine.flush();
  const auto before = engine.metrics();
  const auto plan = engine.reconfigure(manager);
  ASSERT_TRUE(plan.tables.contains(3));  // D got a routing table
  ASSERT_TRUE(plan.tables.contains(1));  // ...and so did B (its keys pair)
  pump(20'000);
  engine.flush();
  const auto after = engine.metrics();
  const double cd_locality =
      static_cast<double>(after.edges[2].local - before.edges[2].local) /
      20'000.0;
  EXPECT_GT(cd_locality, 0.6);
  // Counts at D stay exact through the migration.
  for (const auto& e : truth_d.entries()) {
    std::uint64_t sum = 0;
    for (InstanceIndex i = 0; i < n; ++i) {
      sum += static_cast<runtime::CountingOperator&>(engine.operator_at(3, i))
                 .count(e.key);
    }
    ASSERT_EQ(sum, e.count) << "key " << e.key;
  }
  engine.shutdown();
}

}  // namespace
}  // namespace lar

// --- reconfiguration advisor (future work: impact estimation) -------------------

namespace lar {
namespace {

core::ReconfigurationPlan plan_with(std::size_t moves, double expected_locality,
                                    double imbalance) {
  core::ReconfigurationPlan plan;
  plan.tables.emplace(1, std::make_shared<RoutingTable>());
  plan.expected_locality = expected_locality;
  plan.imbalance = imbalance;
  std::vector<core::KeyMove> mv(moves);
  for (std::size_t i = 0; i < moves; ++i) {
    mv[i] = core::KeyMove{i, 0, 1};
  }
  plan.moves.emplace(1, std::move(mv));
  return plan;
}

TEST(Advisor, EmptyPlanNeverDeploys) {
  const core::ReconfigurationPlan plan;
  const auto v = core::evaluate_plan(plan, 0.2, 1.5);
  EXPECT_FALSE(v.deploy);
}

TEST(Advisor, LargeLocalityGainOutweighsMigration) {
  const auto plan = plan_with(1000, 0.6, 1.03);
  const auto v = core::evaluate_plan(plan, 0.17, 1.03);
  EXPECT_TRUE(v.deploy);
  EXPECT_GT(v.predicted_benefit, v.migration_cost);
}

TEST(Advisor, EphemeralGainDoesNotJustifyMassMigration) {
  // Tiny locality gain, huge migration: skip — the Section 6 scenario.
  const auto plan = plan_with(100'000, 0.20, 1.03);
  core::AdvisorOptions opts;
  opts.tuples_per_period = 1e5;  // short period: little amortization
  const auto v = core::evaluate_plan(plan, 0.19, 1.03, opts);
  EXPECT_FALSE(v.deploy);
}

TEST(Advisor, BalanceRepairAloneCanJustifyDeployment) {
  const auto plan = plan_with(200, 0.17, 1.05);
  const auto v = core::evaluate_plan(plan, 0.17, 1.8);  // badly imbalanced now
  EXPECT_TRUE(v.deploy);
}

TEST(Advisor, HysteresisSuppressesMarginalWins) {
  const auto plan = plan_with(10, 0.21, 1.03);
  core::AdvisorOptions opts;
  opts.tuples_per_period = 1e4;
  opts.min_net_benefit = 1e5;
  const auto v = core::evaluate_plan(plan, 0.20, 1.03, opts);
  EXPECT_FALSE(v.deploy);
}

TEST(Advisor, LongerPeriodsAmortizeMoreMigration) {
  const auto plan = plan_with(5'000, 0.5, 1.03);
  core::AdvisorOptions short_period;
  short_period.tuples_per_period = 1e4;
  core::AdvisorOptions long_period;
  long_period.tuples_per_period = 1e7;
  EXPECT_FALSE(core::evaluate_plan(plan, 0.2, 1.03, short_period).deploy);
  EXPECT_TRUE(core::evaluate_plan(plan, 0.2, 1.03, long_period).deploy);
}

}  // namespace
}  // namespace lar

// --- advisor-in-the-loop (simulator integration) --------------------------------

namespace lar {
namespace {

TEST(Advisor, SimulatorDeploysFirstPlanThenSkipsStableWeeks) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  // Stable workload, fixed seed: after the first deployment nothing changes,
  // so later candidates move almost nothing and gain almost nothing.
  workload::SyntheticGenerator gen({.num_values = 200, .locality = 0.9,
                                    .padding = 0, .seed = 55});
  core::AdvisorOptions opts;
  opts.tuples_per_period = 50'000;
  opts.cost_per_move = 20.0;

  auto report = simulator.run_window(gen, 50'000);
  const auto first = simulator.reconfigure_if_beneficial(
      manager, report.edge_locality[1], report.op_load_balance[2], opts);
  EXPECT_TRUE(first.verdict.deploy);  // 1/n -> ~0.9 locality: obvious win

  int later_deploys = 0;
  for (int week = 0; week < 3; ++week) {
    report = simulator.run_window(gen, 50'000);
    const auto again = simulator.reconfigure_if_beneficial(
        manager, report.edge_locality[1], report.op_load_balance[2], opts);
    later_deploys += again.verdict.deploy;
  }
  EXPECT_EQ(later_deploys, 0);  // stable stream: no reconfiguration churn
  // Routing tables stayed deployed: locality remains high.
  EXPECT_GT(report.edge_locality[1], 0.85);
}

}  // namespace
}  // namespace lar
