// Tests for the hybrid Channel (DESIGN.md §13): per-producer SPSC ring
// lanes with batched publication and watermarked control, differentially
// against the legacy shared mutex queue — per-producer FIFO must be
// identical between the two paths, with control messages pinned at the
// exact data position they were pushed at.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/queue.hpp"

namespace lar::runtime {
namespace {

// Item encoding for multi-producer runs: producer * kStride + position.
// Data items are positive; a control item is the negated encoding of how
// many data items its producer pushed before it.
constexpr std::int64_t kStride = 10'000'000;

/// Asserts the per-producer projection is canonical: data positions strictly
/// consecutive from 0, and every control item consumed when exactly its
/// pushed-behind count of data items has been consumed (FIFO-behind-data,
/// ahead of everything pushed after it).
void check_per_producer_fifo(
    const std::vector<std::vector<std::int64_t>>& seqs) {
  for (std::size_t p = 0; p < seqs.size(); ++p) {
    std::int64_t next_data = 0;
    for (const std::int64_t v : seqs[p]) {
      if (v >= 0) {
        ASSERT_EQ(v % kStride, next_data) << "producer " << p;
        ++next_data;
      } else {
        ASSERT_EQ((-v) % kStride, next_data)
            << "producer " << p << ": control out of position";
      }
    }
  }
}

// --- differential: lane channel vs reference shared channel ----------------

TEST(QueueDifferential, LanesMatchSharedQueuePerProducerOrder) {
  constexpr int kProducers = 8;
  constexpr std::int64_t kItems = 4000;
  constexpr std::int64_t kCtrlEvery = 97;

  const auto run = [&](bool use_lanes) {
    Channel<std::int64_t> ch(256);
    std::vector<std::uint32_t> lanes;
    if (use_lanes) {
      for (int p = 0; p < kProducers; ++p) lanes.push_back(ch.add_lane(64));
      ch.set_lane_batch(7);  // deliberately not a divisor of anything
    }
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    std::int64_t total = 0;
    for (int p = 0; p < kProducers; ++p) {
      total += kItems + (kItems - 1) / kCtrlEvery + 1;
      producers.emplace_back([&, p] {
        const std::int64_t base = p * kStride;
        for (std::int64_t i = 0; i < kItems; ++i) {
          if (i != 0 && i % kCtrlEvery == 0) {
            if (use_lanes) {
              ASSERT_TRUE(ch.push_unbounded_after(lanes[p], -(base + i)));
            } else {
              ASSERT_TRUE(ch.push_unbounded(-(base + i)));
            }
          }
          if (use_lanes) {
            ASSERT_TRUE(ch.lane_push(lanes[p], base + i));
          } else {
            ASSERT_TRUE(ch.push(base + i));
          }
        }
        // Trailing control: also exercises flush-before-control at the end.
        if (use_lanes) {
          ASSERT_TRUE(ch.push_unbounded_after(lanes[p], -(base + kItems)));
        } else {
          ASSERT_TRUE(ch.push_unbounded(-(base + kItems)));
        }
      });
    }
    std::vector<std::vector<std::int64_t>> seqs(kProducers);
    for (std::int64_t n = 0; n < total; ++n) {
      const auto v = ch.pop();
      EXPECT_TRUE(v.has_value());
      if (!v.has_value()) break;
      const std::int64_t x = *v;
      const auto p = static_cast<std::size_t>((x < 0 ? -x : x) / kStride);
      if (p >= seqs.size()) {
        ADD_FAILURE() << "item " << x << " maps to no producer";
        break;
      }
      seqs[p].push_back(x);
    }
    for (auto& t : producers) t.join();
    return seqs;
  };

  const auto lane_seqs = run(/*use_lanes=*/true);
  const auto ref_seqs = run(/*use_lanes=*/false);
  check_per_producer_fifo(lane_seqs);
  check_per_producer_fifo(ref_seqs);
  // Canonical per-producer order means the projections are identical.
  EXPECT_EQ(lane_seqs, ref_seqs);
}

// --- batching semantics ----------------------------------------------------

TEST(QueueBatch, StagedItemsInvisibleUntilFlushOrBatchBoundary) {
  Channel<int> ch(16);
  const std::uint32_t lane = ch.add_lane(16);
  ch.set_lane_batch(3);
  ASSERT_TRUE(ch.lane_push(lane, 1));
  ASSERT_TRUE(ch.lane_push(lane, 2));
  EXPECT_EQ(ch.size(), 0u);  // staged, not published
  EXPECT_FALSE(ch.try_pop().has_value());
  ASSERT_TRUE(ch.lane_push(lane, 3));  // batch boundary publishes
  EXPECT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch.try_pop(), 1);
  EXPECT_EQ(ch.try_pop(), 2);
  EXPECT_EQ(ch.try_pop(), 3);
  ASSERT_TRUE(ch.lane_push(lane, 4));
  EXPECT_FALSE(ch.try_pop().has_value());
  ch.lane_flush(lane);
  EXPECT_EQ(ch.try_pop(), 4);
  EXPECT_FALSE(ch.try_pop().has_value());
}

TEST(QueueBatch, ControlPushPublishesStagedBatchFirst) {
  Channel<int> ch(16);
  const std::uint32_t lane = ch.add_lane(16);
  ch.set_lane_batch(100);  // larger than anything staged here
  ASSERT_TRUE(ch.lane_push(lane, 1));
  ASSERT_TRUE(ch.lane_push(lane, 2));
  EXPECT_FALSE(ch.try_pop().has_value());
  ASSERT_TRUE(ch.push_unbounded_after(lane, 99));
  EXPECT_EQ(ch.size(), 3u);
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), 2);
  EXPECT_EQ(ch.pop(), 99);
}

TEST(QueueBatch, ControlHoldsBackDataPublishedAfterIt) {
  Channel<int> ch(16);
  const std::uint32_t lane = ch.add_lane(16);
  ASSERT_TRUE(ch.lane_push(lane, 1));
  ASSERT_TRUE(ch.push_unbounded_after(lane, -1));
  ASSERT_TRUE(ch.lane_push(lane, 2));
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), -1);  // the watermark pins it between 1 and 2
  EXPECT_EQ(ch.pop(), 2);
}

TEST(QueueBatch, SharedQueueServedBeforeLaneControl) {
  // The engine relies on driver-side shared control (e.g. a checkpoint
  // commit) keeping its FIFO edge over later lane-side control (e.g. the
  // next epoch's barrier).
  Channel<int> ch(16);
  const std::uint32_t lane = ch.add_lane(16);
  ASSERT_TRUE(ch.lane_push(lane, 1));
  ASSERT_TRUE(ch.push_unbounded_after(lane, 100));  // lane control
  ASSERT_TRUE(ch.push_unbounded(200));              // shared (driver) control
  EXPECT_EQ(ch.pop(), 200);
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), 100);
}

// --- abort / drain ---------------------------------------------------------

TEST(QueueAbort, AbortStagedDiscardsOnlyUnpublishedItems) {
  Channel<int> ch(16);
  const std::uint32_t lane = ch.add_lane(16);
  ch.set_lane_batch(100);
  for (int i = 1; i <= 7; ++i) ASSERT_TRUE(ch.lane_push(lane, i));
  ch.lane_flush(lane);
  for (int i = 8; i <= 9; ++i) ASSERT_TRUE(ch.lane_push(lane, i));
  EXPECT_EQ(ch.lane_abort_staged(lane), 2u);
  for (int i = 1; i <= 7; ++i) EXPECT_EQ(ch.try_pop(), i);
  EXPECT_FALSE(ch.try_pop().has_value());
  EXPECT_EQ(ch.lane_abort_staged(lane), 0u);
}

TEST(QueueDrain, DrainMergesLaneDataControlAndShared) {
  Channel<int> ch(16);
  const std::uint32_t lane = ch.add_lane(16);
  ASSERT_TRUE(ch.lane_push(lane, 1));
  ASSERT_TRUE(ch.push_unbounded_after(lane, -1));
  ASSERT_TRUE(ch.lane_push(lane, 2));
  ASSERT_TRUE(ch.push_unbounded(-2));
  const auto out = ch.drain();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], -1);  // control at its watermark position
  EXPECT_EQ(out[2], 2);
  EXPECT_EQ(out[3], -2);  // shared queue after the lanes
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_FALSE(ch.try_pop().has_value());
}

// --- close/drain under concurrent push: conservation -----------------------

TEST(QueueStress, CloseAndDrainDuringConcurrentPushConservesItems) {
  // 12 producers + 1 popping consumer + 1 sweeping drainer = 14 threads,
  // the crash-sweep shape: drain() racing a live consumer through the gate
  // while producers keep pushing until close().
  constexpr int kProducers = 12;
  constexpr std::int64_t kItems = 20'000;
  Channel<std::int64_t> ch(128);
  std::vector<std::uint32_t> lanes;
  lanes.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) lanes.push_back(ch.add_lane(32));
  ch.set_lane_batch(5);

  std::vector<std::atomic<std::int64_t>> pushed(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::int64_t i = 0; i < kItems; ++i) {
        if (!ch.lane_push(lanes[p], p * kStride + i)) break;  // closed
        pushed[p].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::vector<char>> seen(kProducers,
                                      std::vector<char>(kItems, 0));
  std::mutex seen_mutex;
  std::atomic<std::int64_t> consumed{0};
  const auto record = [&](std::int64_t v) {
    const auto p = static_cast<std::size_t>(v / kStride);
    const auto i = static_cast<std::size_t>(v % kStride);
    std::lock_guard lock(seen_mutex);
    ASSERT_LT(p, seen.size());
    ASSERT_EQ(seen[p][i], 0) << "duplicate delivery";
    seen[p][i] = 1;
  };

  std::thread consumer([&] {
    while (const auto v = ch.pop()) {
      record(*v);
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread drainer([&] {
    for (int round = 0; round < 50; ++round) {
      for (const std::int64_t v : ch.drain()) {
        record(v);
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });
  drainer.join();
  ch.close();
  for (auto& t : producers) t.join();
  consumer.join();

  // Post-close sweep: published leftovers drain; staged leftovers abort.
  for (const std::int64_t v : ch.drain()) {
    record(v);
    consumed.fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t aborted = 0;
  for (int p = 0; p < kProducers; ++p) {
    aborted += static_cast<std::int64_t>(ch.lane_abort_staged(lanes[p]));
  }
  std::int64_t total_pushed = 0;
  for (int p = 0; p < kProducers; ++p) {
    total_pushed += pushed[p].load(std::memory_order_relaxed);
  }
  EXPECT_EQ(consumed.load(std::memory_order_relaxed) + aborted, total_pushed);
}

// --- metrics ---------------------------------------------------------------

TEST(QueueMetrics, SizeAndHighWaterMarkTrackPublishedDepth) {
  Channel<int> ch(16);
  const std::uint32_t lane = ch.add_lane(16);
  EXPECT_EQ(ch.high_water_mark(), 0u);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ch.lane_push(lane, i));
  EXPECT_EQ(ch.size(), 4u);  // default batch 1: every push publishes
  ASSERT_TRUE(ch.push_unbounded(99));
  EXPECT_EQ(ch.size(), 5u);
  while (ch.try_pop().has_value()) {
  }
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_EQ(ch.high_water_mark(), 5u);  // the ratchet survives the pops
}

TEST(QueueBackpressure, FullLaneBlocksUntilConsumed) {
  Channel<int> ch(4);
  const std::uint32_t lane = ch.add_lane(2);  // tiny ring
  ASSERT_TRUE(ch.lane_push(lane, 1));
  ASSERT_TRUE(ch.lane_push(lane, 2));
  std::atomic<bool> third_done{false};
  std::thread producer([&] {
    ASSERT_TRUE(ch.lane_push(lane, 3));  // blocks until a slot frees
    third_done.store(true, std::memory_order_release);
  });
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), 2);
  EXPECT_EQ(ch.pop(), 3);
  producer.join();
  EXPECT_TRUE(third_done.load(std::memory_order_acquire));
}

TEST(QueueClose, CloseWakesBlockedLaneProducer) {
  Channel<int> ch(4);
  const std::uint32_t lane = ch.add_lane(2);
  ASSERT_TRUE(ch.lane_push(lane, 1));
  ASSERT_TRUE(ch.lane_push(lane, 2));
  std::thread producer([&] {
    EXPECT_FALSE(ch.lane_push(lane, 3));  // parked full, released by close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  producer.join();
}

}  // namespace
}  // namespace lar::runtime
