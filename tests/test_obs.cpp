// Unit tests for lar::obs — registry semantics, exporter golden output,
// trace canonicalization, thread-safety, and end-to-end byte-stability of
// the exports for a fixed-seed engine run.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/manager.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/span_report.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "runtime/engine.hpp"
#include "sim/simulator.hpp"
#include "workload/synthetic.hpp"

namespace lar {
namespace {

using obs::Phase;
using obs::Registry;
using obs::TraceRecorder;

// --- registry ----------------------------------------------------------------

TEST(Registry, CounterFindsSameInstrument) {
  Registry reg;
  obs::Counter& a = reg.counter("lar_x_total", {{"op", "count"}});
  a.inc(3);
  obs::Counter& b = reg.counter("lar_x_total", {{"op", "count"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Registry, LabelOrderIsCanonicalized) {
  Registry reg;
  obs::Counter& a = reg.counter("lar_x_total", {{"b", "2"}, {"a", "1"}});
  obs::Counter& b = reg.counter("lar_x_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, CounterAdvanceToIsMonotonic) {
  Registry reg;
  obs::Counter& c = reg.counter("lar_x_total");
  c.advance_to(10);
  c.advance_to(7);  // never lowers
  EXPECT_EQ(c.value(), 10u);
  c.advance_to(12);
  EXPECT_EQ(c.value(), 12u);
}

TEST(Registry, GaugeCombinators) {
  Registry reg;
  obs::Gauge& g = reg.gauge("lar_x_ratio");
  g.set(0.5);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  g.max_of(0.5);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  g.max_of(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(Registry, HistogramBucketsAndAggregates) {
  Registry reg;
  obs::Histogram& h = reg.histogram("lar_x_bytes", {10.0, 100.0});
  h.observe(5);    // <= 10
  h.observe(10);   // <= 10 (upper bounds are inclusive)
  h.observe(50);   // <= 100
  h.observe(500);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 565.0);
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
}

// --- exporters (embedded golden) --------------------------------------------

/// A registry with one instrument of each kind, fixed values.
void fill_golden(Registry& reg) {
  reg.counter("lar_tuples_total", {{"op", "count"}, {"inst", "0"}},
              "Tuples processed.")
      .inc(42);
  reg.counter("lar_tuples_total", {{"op", "count"}, {"inst", "1"}},
              "Tuples processed.")
      .inc(7);
  reg.gauge("lar_locality_ratio", {}, "Locality.").set(0.75);
  obs::Histogram& h =
      reg.histogram("lar_size_bytes", {10.0, 100.0}, {}, "Sizes.");
  h.observe(5);
  h.observe(50);
  h.observe(500);
}

TEST(Exporters, PrometheusGolden) {
  Registry reg;
  fill_golden(reg);
  const std::string expected =
      "# HELP lar_locality_ratio Locality.\n"
      "# TYPE lar_locality_ratio gauge\n"
      "lar_locality_ratio 0.75\n"
      "# HELP lar_size_bytes Sizes.\n"
      "# TYPE lar_size_bytes histogram\n"
      "lar_size_bytes_bucket{le=\"10\"} 1\n"
      "lar_size_bytes_bucket{le=\"100\"} 2\n"
      "lar_size_bytes_bucket{le=\"+Inf\"} 3\n"
      "lar_size_bytes_sum 555\n"
      "lar_size_bytes_count 3\n"
      "# HELP lar_tuples_total Tuples processed.\n"
      "# TYPE lar_tuples_total counter\n"
      "lar_tuples_total{inst=\"0\",op=\"count\"} 42\n"
      "lar_tuples_total{inst=\"1\",op=\"count\"} 7\n";
  EXPECT_EQ(obs::to_prometheus(reg), expected);
}

TEST(Exporters, JsonGolden) {
  Registry reg;
  fill_golden(reg);
  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"lar_locality_ratio\",\"kind\":\"gauge\",\"help\":"
      "\"Locality.\",\"samples\":[{\"labels\":{},\"value\":0.75}]},"
      "{\"name\":\"lar_size_bytes\",\"kind\":\"histogram\",\"help\":"
      "\"Sizes.\",\"samples\":[{\"labels\":{},\"buckets\":[{\"le\":10,"
      "\"count\":1},{\"le\":100,\"count\":2},{\"le\":null,\"count\":3}],"
      "\"sum\":555,\"count\":3}]},"
      "{\"name\":\"lar_tuples_total\",\"kind\":\"counter\",\"help\":"
      "\"Tuples processed.\",\"samples\":["
      "{\"labels\":{\"inst\":\"0\",\"op\":\"count\"},\"value\":42},"
      "{\"labels\":{\"inst\":\"1\",\"op\":\"count\"},\"value\":7}]}"
      "]}";
  EXPECT_EQ(obs::to_json(reg), expected);
}

TEST(Exporters, FilterDropsFamilies) {
  Registry reg;
  fill_golden(reg);
  const std::string out = obs::to_prometheus(reg, [](std::string_view name) {
    return name != "lar_tuples_total";
  });
  EXPECT_EQ(out.find("lar_tuples_total"), std::string::npos);
  EXPECT_NE(out.find("lar_locality_ratio"), std::string::npos);
}

// --- trace -------------------------------------------------------------------

TEST(Trace, CanonicalOrderIsVersionPhaseEntity) {
  TraceRecorder trace;
  trace.record(2, Phase::kGather, "manager");
  trace.record(1, Phase::kMigrate, obs::key_entity(7), 1, 64);
  trace.record(1, Phase::kAck, obs::poi_entity(1, 2));
  trace.record(1, Phase::kAck, obs::poi_entity(1, 0));
  const auto events = trace.canonical_events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, Phase::kAck);
  EXPECT_EQ(events[0].entity, obs::poi_entity(1, 0));
  EXPECT_EQ(events[1].entity, obs::poi_entity(1, 2));
  EXPECT_EQ(events[2].phase, Phase::kMigrate);
  EXPECT_EQ(events[3].version, 2u);
}

TEST(Trace, JsonOmitsSeqByDefault) {
  TraceRecorder trace;
  trace.record(1, Phase::kCompute, "plan", 10, 20, 3);
  const std::string json = obs::trace_to_json(trace);
  EXPECT_EQ(json,
            "[{\"version\":1,\"phase\":\"compute\",\"entity\":\"plan\","
            "\"count\":10,\"bytes\":20,\"vtime\":3}]");
  const std::string with_seq = obs::trace_to_json(trace, /*include_seq=*/true);
  EXPECT_NE(with_seq.find("\"seq\":0"), std::string::npos);
}

// --- concurrency (ctest label: obs) -----------------------------------------

TEST(Concurrency, NoLostIncrementsAcrossEightThreads) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Every thread interns the shared instruments itself, so creation
      // races are exercised too; one label set per pair of threads.
      obs::Counter& c = reg.counter("lar_conc_total");
      obs::Counter& labeled =
          reg.counter("lar_conc_by_half_total",
                      {{"half", t % 2 == 0 ? "even" : "odd"}});
      obs::Gauge& hwm = reg.gauge("lar_conc_hwm");
      obs::Histogram& h = reg.histogram("lar_conc_bytes", {100.0, 1000.0});
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        labeled.inc(2);
        hwm.max_of(static_cast<double>(i));
        h.observe(static_cast<double>(i % 2000));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(reg.counter("lar_conc_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.counter("lar_conc_by_half_total", {{"half", "even"}}).value(),
            static_cast<std::uint64_t>(kThreads / 2) * kIters * 2);
  EXPECT_EQ(reg.counter("lar_conc_by_half_total", {{"half", "odd"}}).value(),
            static_cast<std::uint64_t>(kThreads / 2) * kIters * 2);
  EXPECT_DOUBLE_EQ(reg.gauge("lar_conc_hwm").value(), kIters - 1);
  obs::Histogram& h = reg.histogram("lar_conc_bytes", {100.0, 1000.0});
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  std::uint64_t bucket_sum = 0;
  for (const std::uint64_t b : h.bucket_counts()) bucket_sum += b;
  EXPECT_EQ(bucket_sum, h.count());
}

TEST(Concurrency, TraceRecorderConcurrentRecords) {
  TraceRecorder trace;
  constexpr int kThreads = 8;
  constexpr int kIters = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < kIters; ++i) {
        trace.record(1, Phase::kMigrate, obs::key_entity(t), 1, 8);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(trace.size(), static_cast<std::size_t>(kThreads) * kIters);
  // Sequence numbers must be unique and dense.
  std::vector<bool> seen(trace.size(), false);
  for (const auto& e : trace.events()) {
    ASSERT_LT(e.seq, seen.size());
    EXPECT_FALSE(seen[e.seq]);
    seen[e.seq] = true;
  }
}

// --- end-to-end byte stability ----------------------------------------------

runtime::OperatorFactory counting_factory() {
  return [](OperatorId op,
            InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
    return std::make_unique<runtime::CountingOperator>(op == 1 ? 0u : 1u);
  };
}

/// One fixed-seed engine run with a reconfiguration in the middle; returns
/// the Prometheus text and combined JSON report.  Queue high-water marks are
/// the one scheduling-dependent family, so the byte-stable export drops
/// them.
std::pair<std::string, std::string> instrumented_engine_run() {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Registry reg;
  TraceRecorder trace;
  runtime::EngineOptions opts;
  opts.fields_mode = FieldsRouting::kHash;
  opts.pair_stats_capacity = 0;  // exact statistics -> deterministic plans
  opts.registry = &reg;
  opts.trace = &trace;
  runtime::Engine engine(topo, place, counting_factory(), opts);
  engine.start();
  core::Manager manager(topo, place, {});
  manager.set_metrics_registry(&reg);
  workload::SyntheticGenerator gen(
      {.num_values = 120, .locality = 0.8, .padding = 8, .seed = 31});
  for (int i = 0; i < 6000; ++i) engine.inject(gen.next());
  engine.flush();  // quiescent reconfiguration: no racy buffer/drain events
  (void)engine.reconfigure(manager);
  for (int i = 0; i < 6000; ++i) engine.inject(gen.next());
  engine.flush();
  engine.publish_metrics();
  const auto keep = [](std::string_view name) {
    return name.substr(0, 10) != "lar_queue_";
  };
  auto out = std::make_pair(obs::to_prometheus(reg, keep),
                            obs::report_json(reg, &trace, keep));
  engine.shutdown();
  return out;
}

TEST(ByteStability, SameSeedEngineRunsExportIdenticalBytes) {
  const auto [prom1, json1] = instrumented_engine_run();
  const auto [prom2, json2] = instrumented_engine_run();
  EXPECT_EQ(prom1, prom2);
  EXPECT_EQ(json1, json2);
  // Sanity: the export actually carries the instrumented families.
  for (const char* family :
       {"lar_tuples_injected_total", "lar_tuples_processed_total",
        "lar_edge_tuples_total", "lar_edge_locality_ratio",
        "lar_states_migrated_total", "lar_state_migration_size_bytes",
        "lar_plan_edge_cut", "lar_partitioner_fm_passes_total"}) {
    EXPECT_NE(prom1.find(family), std::string::npos) << family;
  }
  for (const char* phase :
       {"\"gather\"", "\"compute\"", "\"stage\"", "\"ack\"", "\"propagate\"",
        "\"migrate\""}) {
    EXPECT_NE(json1.find(phase), std::string::npos) << phase;
  }
}

TEST(ByteStability, EnginePublishMatchesMetricsSnapshot) {
  const std::uint32_t n = 2;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Registry reg;
  runtime::EngineOptions opts;
  opts.fields_mode = FieldsRouting::kHash;
  opts.registry = &reg;
  runtime::Engine engine(topo, place, counting_factory(), opts);
  engine.start();
  workload::SyntheticGenerator gen(
      {.num_values = 40, .locality = 0.6, .padding = 4, .seed = 32});
  for (int i = 0; i < 2000; ++i) engine.inject(gen.next());
  engine.flush();
  engine.publish_metrics();
  const runtime::EngineMetrics m = engine.metrics();
  EXPECT_EQ(reg.counter("lar_tuples_injected_total").value(),
            m.tuples_injected);
  std::uint64_t local = 0;
  std::uint64_t remote = 0;
  for (const auto& e : m.edges) {
    local += e.local;
    remote += e.remote;
  }
  std::uint64_t reg_local = 0;
  std::uint64_t reg_remote = 0;
  for (const auto& family : reg.families()) {
    if (family.name != "lar_edge_tuples_total") continue;
    for (const auto& s : family.samples) {
      for (const auto& label : *s.labels) {
        if (label.key != "path") continue;
        (label.value == "local" ? reg_local : reg_remote) +=
            s.counter->value();
      }
    }
  }
  EXPECT_EQ(reg_local, local);
  EXPECT_EQ(reg_remote, remote);
  engine.shutdown();
}

TEST(ByteStability, SimulatorWindowReportIsViewOverRegistry) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  cfg.seed = 17;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kHash);
  workload::SyntheticGenerator gen(
      {.num_values = 4000, .locality = 0.6, .padding = 0, .seed = 17});
  const sim::WindowReport report = simulator.run_window(gen, 50'000);

  Registry& reg = simulator.registry();
  EXPECT_DOUBLE_EQ(reg.gauge("lar_window_throughput_tps").value(),
                   report.throughput);
  EXPECT_EQ(reg.counter("lar_windows_total").value(), 1u);
  EXPECT_DOUBLE_EQ(
      reg.gauge("lar_window_bottleneck",
                {{"resource", sim::to_string(report.bottleneck)}})
          .value(),
      1.0);
  const std::string edge0 =
      topo.op(topo.edges()[0].from).name + "->" + topo.op(topo.edges()[0].to).name;
  EXPECT_DOUBLE_EQ(reg.gauge("lar_edge_locality_ratio", {{"edge", edge0}}).value(),
                   report.edge_locality[0]);

  // Two same-seed simulators export identical bytes (no filter needed: the
  // simulator is single-threaded).
  sim::Simulator simulator2(topo, place, cfg, FieldsRouting::kHash);
  workload::SyntheticGenerator gen2(
      {.num_values = 4000, .locality = 0.6, .padding = 0, .seed = 17});
  (void)simulator2.run_window(gen2, 50'000);
  EXPECT_EQ(obs::to_prometheus(simulator.registry()),
            obs::to_prometheus(simulator2.registry()));
}

TEST(ByteStability, SimulatorReconfigureTraceCoversAllSixPhases) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.seed = 5;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  manager.set_metrics_registry(&simulator.registry());
  workload::SyntheticGenerator gen(
      {.num_values = 300, .locality = 0.7, .padding = 0, .seed = 5});
  (void)simulator.run_window(gen, 20'000);
  (void)simulator.reconfigure(manager);
  const auto events = simulator.trace().canonical_events();
  ASSERT_EQ(events.size(), 6u);
  for (const Phase phase :
       {Phase::kGather, Phase::kCompute, Phase::kStage, Phase::kPropagate,
        Phase::kMigrate, Phase::kDrain}) {
    bool found = false;
    for (const auto& e : events) found |= e.phase == phase;
    EXPECT_TRUE(found) << to_string(phase);
  }
  // The plan diagnostics landed in the shared registry via the manager.
  EXPECT_EQ(simulator.registry().counter("lar_plans_computed_total").value(),
            1u);
}

// --- obs v2: bounded trace ring ----------------------------------------------

TEST(TraceRing, CapDropsOldestAndCounts) {
  TraceRecorder trace(/*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.record(1, Phase::kMigrate, obs::key_entity(i));
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 6u);  // oldest retained
  EXPECT_EQ(events.front().entity, obs::key_entity(6));
  EXPECT_EQ(events.back().seq, 9u);
  trace.clear();
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceRing, ShrinkingCapacityEvictsImmediately) {
  TraceRecorder trace;
  for (int i = 0; i < 8; ++i) trace.record(1, Phase::kAck, "a");
  trace.set_capacity(2);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.dropped(), 6u);
}

// --- obs v2: exporter escaping -----------------------------------------------

TEST(Exporters, PrometheusEscapesHostileLabelValues) {
  Registry reg;
  reg.counter("lar_hostile_total", {{"edge", "A\"B\\C\nD"}},
              "Help with \\ and\na newline.")
      .inc(1);
  const std::string expected =
      "# HELP lar_hostile_total Help with \\\\ and\\na newline.\n"
      "# TYPE lar_hostile_total counter\n"
      "lar_hostile_total{edge=\"A\\\"B\\\\C\\nD\"} 1\n";
  EXPECT_EQ(obs::to_prometheus(reg), expected);
}

// A hostile tenant name flows through a Scoped view (lar::fleet publishes
// every per-tenant family through one) into the canonical label order and
// the Prometheus escaper, byte-for-byte.  The constant `app` label must
// sort canonically against per-series labels, merge without shadowing, and
// escape exactly like a directly-passed label would.
TEST(Exporters, ScopedEscapesHostileTenantName) {
  Registry reg;
  const obs::Scoped scoped(reg, {{"app", "A\"B\\C\nD"}});
  scoped.counter("lar_tenant_total", {{"edge", "x"}}, "Per-tenant series.")
      .inc(2);
  scoped.gauge("lar_tenant_gauge", {}, "Constant labels only.").set(1.5);
  const std::string expected =
      "# HELP lar_tenant_gauge Constant labels only.\n"
      "# TYPE lar_tenant_gauge gauge\n"
      "lar_tenant_gauge{app=\"A\\\"B\\\\C\\nD\"} 1.5\n"
      "# HELP lar_tenant_total Per-tenant series.\n"
      "# TYPE lar_tenant_total counter\n"
      "lar_tenant_total{app=\"A\\\"B\\\\C\\nD\",edge=\"x\"} 2\n";
  EXPECT_EQ(obs::to_prometheus(reg), expected);
}

// --- obs v2: causal spans ----------------------------------------------------

TEST(Spans, DisabledByDefaultAndOptIn) {
  TraceRecorder trace;
  EXPECT_EQ(trace.begin_span(1, Phase::kWave, "wave"), 0u);
  EXPECT_EQ(trace.size(), 0u);  // disabled begin_span records nothing
  trace.set_spans_enabled(true);
  const std::uint64_t outer = trace.begin_span(1, Phase::kWave, "wave");
  EXPECT_NE(outer, 0u);
  EXPECT_EQ(trace.current_span(), outer);
  trace.record(1, Phase::kAck, "a");
  const std::uint64_t inner = trace.begin_span(1, Phase::kCheckpoint, "c");
  trace.record(1, Phase::kMigrate, "k");
  trace.end_span(inner, 2.0);
  trace.end_span(outer, 3.0);
  EXPECT_EQ(trace.current_span(), 0u);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].span, outer);
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_DOUBLE_EQ(events[0].vtime_end, 3.0);
  EXPECT_EQ(events[1].parent, outer);   // leaf under the wave
  EXPECT_EQ(events[2].span, inner);
  EXPECT_EQ(events[2].parent, outer);   // nested span
  EXPECT_DOUBLE_EQ(events[2].vtime_end, 2.0);
  EXPECT_EQ(events[3].parent, inner);   // leaf under the checkpoint
}

TEST(Spans, SimulatorWaveFormsWellFormedPhaseTree) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.seed = 5;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  manager.set_metrics_registry(&simulator.registry());
  simulator.trace().set_spans_enabled(true);
  workload::SyntheticGenerator gen(
      {.num_values = 300, .locality = 0.7, .padding = 0, .seed = 5});
  (void)simulator.run_window(gen, 20'000);
  (void)simulator.reconfigure(manager);

  const obs::SpanTree tree =
      obs::build_span_tree(simulator.trace().canonical_events());
  EXPECT_TRUE(tree.orphans.empty());  // every referenced parent span exists
  ASSERT_EQ(tree.roots.size(), 1u);
  const obs::SpanNode& wave = tree.roots[0];
  EXPECT_EQ(wave.event.phase, Phase::kWave);
  // All seven phases, nested under the wave in wave order, back to back:
  // each phase starts where the previous one ended.
  const Phase order[] = {Phase::kGather,    Phase::kCompute, Phase::kStage,
                         Phase::kAck,       Phase::kPropagate,
                         Phase::kMigrate,   Phase::kDrain};
  ASSERT_EQ(wave.children.size(), 7u);
  double t = wave.event.vtime;
  for (std::size_t i = 0; i < wave.children.size(); ++i) {
    EXPECT_EQ(wave.children[i].event.phase, order[i]);
    EXPECT_DOUBLE_EQ(wave.children[i].event.vtime, t);
    EXPECT_GE(wave.children[i].event.vtime_end, wave.children[i].event.vtime);
    t = wave.children[i].event.vtime_end;
  }
  EXPECT_DOUBLE_EQ(wave.event.vtime_end, t);  // wave closes at the last drain

  // The same wave's critical path reports every phase once.
  const obs::WaveCriticalPath path = obs::wave_critical_path(wave);
  ASSERT_EQ(path.phases.size(), 7u);
  EXPECT_DOUBLE_EQ(path.duration(), t - wave.event.vtime);
}

TEST(Spans, EngineWaveAdoptsRacingProtocolLeaves) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  Registry reg;
  TraceRecorder trace;
  trace.set_spans_enabled(true);
  runtime::EngineOptions opts;
  opts.fields_mode = FieldsRouting::kHash;
  opts.pair_stats_capacity = 0;
  opts.registry = &reg;
  opts.trace = &trace;
  runtime::Engine engine(topo, place, counting_factory(), opts);
  engine.start();
  core::Manager manager(topo, place, {});
  workload::SyntheticGenerator gen(
      {.num_values = 120, .locality = 0.8, .padding = 8, .seed = 31});
  for (int i = 0; i < 6000; ++i) engine.inject(gen.next());
  engine.flush();
  (void)engine.reconfigure(manager);
  engine.shutdown();

  const obs::SpanTree tree = obs::build_span_tree(trace.canonical_events());
  EXPECT_TRUE(tree.orphans.empty());
  ASSERT_EQ(tree.roots.size(), 1u);
  const obs::SpanNode& wave = tree.roots[0];
  EXPECT_EQ(wave.event.phase, Phase::kWave);
  // Driver-side records and the racing per-POI acks / propagate hops /
  // migrations all landed inside the wave span.
  bool saw[static_cast<int>(Phase::kWave) + 1] = {};
  for (const auto& leaf : wave.leaves) saw[static_cast<int>(leaf.phase)] = true;
  EXPECT_TRUE(saw[static_cast<int>(Phase::kGather)]);
  EXPECT_TRUE(saw[static_cast<int>(Phase::kCompute)]);
  EXPECT_TRUE(saw[static_cast<int>(Phase::kStage)]);
  EXPECT_TRUE(saw[static_cast<int>(Phase::kAck)]);
  EXPECT_TRUE(saw[static_cast<int>(Phase::kPropagate)]);
  EXPECT_TRUE(saw[static_cast<int>(Phase::kMigrate)]);
  // Nothing recorded after the wave closed ended up outside it except
  // pre-wave events (none here).
  EXPECT_TRUE(tree.toplevel.empty());
}

// --- obs v2: timeline store --------------------------------------------------

TEST(Timeline, DeltaCompressionAndEviction) {
  Registry reg;
  obs::Gauge& g = reg.gauge("lar_x");
  obs::Counter& c = reg.counter("lar_y_total");
  obs::Timeline::Options topts;
  topts.capacity = 2;
  obs::Timeline tl(topts);

  g.set(1.0);
  c.inc();
  tl.tick(reg, 1.0);  // first tick: full set
  g.set(2.0);
  tl.tick(reg, 2.0);  // delta: lar_x only
  tl.tick(reg, 3.0);  // nothing changed: empty delta; evicts tick 0

  EXPECT_EQ(tl.ticks_total(), 3u);
  EXPECT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl.dropped(), 1u);
  const obs::Timeline::Values base = tl.base();  // folded first tick
  ASSERT_EQ(base.size(), 2u);
  EXPECT_DOUBLE_EQ(base.at("lar_x"), 1.0);
  EXPECT_DOUBLE_EQ(base.at("lar_y_total"), 1.0);
  const auto ticks = tl.ticks();
  ASSERT_EQ(ticks.size(), 2u);
  EXPECT_EQ(ticks[0].index, 1u);
  ASSERT_EQ(ticks[0].delta.size(), 1u);
  EXPECT_DOUBLE_EQ(ticks[0].delta.at("lar_x"), 2.0);
  EXPECT_TRUE(ticks[1].delta.empty());
  // latest()/previous() reconstruct the full snapshots.
  EXPECT_TRUE(tl.latest().valid);
  EXPECT_DOUBLE_EQ(tl.latest().values.at("lar_x"), 2.0);
  EXPECT_DOUBLE_EQ(tl.latest().vtime, 3.0);
  EXPECT_TRUE(tl.previous().valid);
  EXPECT_DOUBLE_EQ(tl.previous().vtime, 2.0);
}

TEST(Timeline, GoldenJson) {
  Registry reg;
  reg.gauge("lar_g", {{"op", "a"}}).set(0.5);
  reg.counter("lar_c_total").inc(2);
  obs::Timeline tl;
  tl.tick(reg, 1.0);
  reg.gauge("lar_g", {{"op", "a"}}).set(1.5);
  tl.tick(reg, 2.0);
  EXPECT_EQ(obs::timeline_to_json(tl),
            "{\"ticks_total\":2,\"dropped\":0,\"base\":{},"
            "\"ticks\":[{\"i\":0,\"vtime\":1,\"delta\":{\"lar_c_total\":2,"
            "\"lar_g{op=\\\"a\\\"}\":0.5}},"
            "{\"i\":1,\"vtime\":2,\"delta\":{\"lar_g{op=\\\"a\\\"}\":1.5}}]}");
}

/// One fully-instrumented sim run (spans + timeline + probe) and its
/// timeline JSON — the "with one attached" half of the byte-identity
/// invariant.
std::string sim_timeline_json(std::uint32_t seed) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.seed = seed;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  manager.set_metrics_registry(&simulator.registry());
  obs::Timeline timeline;
  obs::Probe probe;
  simulator.trace().set_spans_enabled(true);
  simulator.set_timeline(&timeline);
  simulator.set_probe(&probe);
  workload::SyntheticGenerator gen(
      {.num_values = 300, .locality = 0.7, .padding = 0, .seed = seed});
  for (int w = 0; w < 3; ++w) {
    (void)simulator.run_window(gen, 20'000);
    if (w == 1) (void)simulator.reconfigure(manager);
  }
  return obs::timeline_to_json(timeline);
}

TEST(Timeline, ByteIdenticalAcrossSameSeedRuns) {
  EXPECT_EQ(sim_timeline_json(17), sim_timeline_json(17));
  EXPECT_EQ(sim_timeline_json(18), sim_timeline_json(18));
  EXPECT_NE(sim_timeline_json(17), sim_timeline_json(18));
}

// --- obs v2: health probe ----------------------------------------------------

TEST(Probe, RulesFireAndPublishAlerts) {
  Registry reg;
  obs::Timeline tl;
  obs::Probe probe;  // default rules

  // Tick 1: balanced, local, quiet.
  reg.gauge("lar_op_load_balance_ratio", {{"op", "B"}}).set(1.1);
  reg.gauge("lar_edge_locality_ratio", {{"edge", "A->B"}}).set(0.9);
  tl.tick(reg, 1.0);
  const obs::Health h1 = probe.evaluate(tl, reg);
  EXPECT_FALSE(h1.pressure);
  EXPECT_FALSE(h1.veto);
  EXPECT_DOUBLE_EQ(reg.gauge("lar_health_pressure").value(), 0.0);

  // Tick 2: imbalance above alpha, locality collapsed, migration activity.
  reg.gauge("lar_op_load_balance_ratio", {{"op", "B"}}).set(2.0);
  reg.gauge("lar_edge_locality_ratio", {{"edge", "A->B"}}).set(0.5);
  reg.counter("lar_key_moves_total").inc(10);
  tl.tick(reg, 2.0);
  const obs::Health h2 = probe.evaluate(tl, reg);
  EXPECT_TRUE(h2.pressure);
  EXPECT_TRUE(h2.veto);
  EXPECT_DOUBLE_EQ(h2.imbalance, 2.0);
  EXPECT_NEAR(h2.locality_drop, 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(h2.migration_delta, 10.0);
  EXPECT_DOUBLE_EQ(reg.gauge("lar_health_pressure").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("lar_health_veto").value(), 1.0);
  EXPECT_EQ(reg.counter("lar_alerts_total", {{"rule", "imbalance"}}).value(),
            1u);
  EXPECT_EQ(
      reg.counter("lar_alerts_total", {{"rule", "locality_drop"}}).value(),
      1u);
  EXPECT_EQ(reg.counter("lar_alerts_total", {{"rule", "migration"}}).value(),
            1u);
  EXPECT_EQ(reg.counter("lar_alerts_total", {{"rule", "queue_growth"}}).value(),
            0u);

  // Tick 3: everything settles; pressure and veto clear, recovery streak 0.
  tl.tick(reg, 3.0);
  const obs::Health h3 = probe.evaluate(tl, reg);
  EXPECT_FALSE(h3.veto);
  EXPECT_EQ(h3.recovery_ticks, 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("lar_health_veto").value(), 0.0);
}

TEST(Probe, RecoveryStreakCountsConsecutiveTicks) {
  Registry reg;
  obs::Timeline tl;
  obs::Probe probe;
  obs::Counter& rec = reg.counter("lar_chaos_recovery_total");
  rec.inc(1);
  tl.tick(reg, 1.0);
  EXPECT_EQ(probe.evaluate(tl, reg).recovery_ticks, 1u);  // first tick: full
  rec.inc(2);
  tl.tick(reg, 2.0);
  EXPECT_EQ(probe.evaluate(tl, reg).recovery_ticks, 2u);
  tl.tick(reg, 3.0);  // no new recoveries: streak resets
  const obs::Health h = probe.evaluate(tl, reg);
  EXPECT_EQ(h.recovery_ticks, 0u);
  EXPECT_FALSE(h.veto);
}

// --- obs v2: concurrency (ctest label: obs, runs under TSan) -----------------

TEST(Concurrency, TimelineAndProbeTickWhileRegistryMutates) {
  Registry reg;
  obs::Timeline tl;
  obs::Probe probe;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&reg, &stop, t] {
      obs::Counter& c =
          reg.counter("lar_conc_tl_total", {{"w", std::to_string(t)}});
      obs::Gauge& g = reg.gauge("lar_conc_tl_hwm");
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc();
        g.max_of(static_cast<double>(t));
      }
    });
  }
  // The driver thread ticks the timeline and evaluates the probe against
  // the live registry, exactly like the engine's publish path.
  for (int i = 0; i < 200; ++i) {
    tl.tick(reg, static_cast<double>(i + 1));
    (void)probe.evaluate(tl, reg);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writers) th.join();
  EXPECT_EQ(tl.ticks_total(), 200u);
  EXPECT_TRUE(tl.latest().valid);
}

TEST(Concurrency, SpanLeavesAdoptParentAcrossThreads) {
  TraceRecorder trace;
  trace.set_spans_enabled(true);
  const std::uint64_t wave = trace.begin_span(1, Phase::kWave, "wave");
  constexpr int kThreads = 4;
  constexpr int kIters = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      for (int i = 0; i < kIters; ++i) {
        trace.record(1, Phase::kMigrate, obs::key_entity(t), 1, 8);
      }
    });
  }
  for (auto& th : threads) th.join();
  trace.end_span(wave, 1.0);
  const auto events = trace.events();
  ASSERT_EQ(events.size(), 1u + kThreads * kIters);
  for (const auto& e : events) {
    if (e.span == wave) continue;
    EXPECT_EQ(e.parent, wave);  // every racing leaf inherited the open span
  }
}

}  // namespace
}  // namespace lar
