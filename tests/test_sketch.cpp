// Unit and property tests for lar::sketch — SpaceSaving, ExactCounter, Zipf.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/rng.hpp"
#include "sketch/exact_counter.hpp"
#include "sketch/space_saving.hpp"
#include "sketch/zipf.hpp"

namespace lar::sketch {
namespace {

using IntSketch = SpaceSaving<std::uint64_t>;

// --- SpaceSaving: exact regime ----------------------------------------------

TEST(SpaceSaving, ExactWhileUnderCapacity) {
  IntSketch s(10);
  for (int i = 0; i < 5; ++i) {
    for (int rep = 0; rep <= i; ++rep) s.add(static_cast<std::uint64_t>(i));
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    const auto e = s.estimate(i);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->count, i + 1);
    EXPECT_EQ(e->error, 0u);
  }
  EXPECT_EQ(s.total(), 1u + 2 + 3 + 4 + 5);
  EXPECT_EQ(s.size(), 5u);
}

TEST(SpaceSaving, TopOrderIsDescending) {
  IntSketch s(10);
  s.add(1, 5);
  s.add(2, 9);
  s.add(3, 1);
  const auto top = s.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 2u);
  EXPECT_EQ(top[1].key, 1u);
}

TEST(SpaceSaving, WeightedAdd) {
  IntSketch s(4);
  s.add(7, 1000);
  EXPECT_EQ(s.estimate(7)->count, 1000u);
  EXPECT_EQ(s.total(), 1000u);
}

TEST(SpaceSaving, ClearResetsEverything) {
  IntSketch s(4);
  s.add(1);
  s.add(2);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.total(), 0u);
  EXPECT_FALSE(s.estimate(1).has_value());
  s.add(3);  // usable after clear
  EXPECT_EQ(s.estimate(3)->count, 1u);
}

// --- SpaceSaving: eviction regime --------------------------------------------

TEST(SpaceSaving, EvictionInheritsMinCount) {
  IntSketch s(2);
  s.add(1, 10);
  s.add(2, 3);
  s.add(99);  // evicts key 2 (count 3); new count = 3 + 1, error = 3
  const auto e = s.estimate(99);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->count, 4u);
  EXPECT_EQ(e->error, 3u);
  EXPECT_FALSE(s.estimate(2).has_value());
  EXPECT_TRUE(s.estimate(1).has_value());
}

TEST(SpaceSaving, SizeNeverExceedsCapacity) {
  IntSketch s(16);
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) s.add(rng.below(1000));
  EXPECT_LE(s.size(), 16u);
  EXPECT_EQ(s.total(), 10'000u);
}

TEST(SpaceSaving, MinCountZeroUntilFull) {
  IntSketch s(3);
  s.add(1, 5);
  EXPECT_EQ(s.min_count(), 0u);
  s.add(2, 2);
  s.add(3, 9);
  EXPECT_EQ(s.min_count(), 2u);
}

// Property: the count overestimates truth by at most the entry's error, and
// the error is bounded by total/capacity (classic SpaceSaving guarantee).
class SpaceSavingProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpaceSavingProperty, OverestimationBoundedOnZipfStream) {
  const std::size_t capacity = GetParam();
  IntSketch sketch(capacity);
  ExactCounter<std::uint64_t> truth;
  ZipfSampler zipf(5000, 1.1);
  Rng rng(41);
  const std::uint64_t n = 200'000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t key = zipf.sample(rng);
    sketch.add(key);
    truth.add(key);
  }
  for (const auto& entry : sketch.entries()) {
    const std::uint64_t exact = truth.count(entry.key);
    EXPECT_GE(entry.count, exact);                  // never underestimates
    EXPECT_LE(entry.count - exact, entry.error);    // error bound is honest
    EXPECT_LE(entry.error, n / capacity);           // ICDT'05 Theorem
  }
}

TEST_P(SpaceSavingProperty, HeavyHittersGuaranteedPresent) {
  const std::size_t capacity = GetParam();
  IntSketch sketch(capacity);
  ExactCounter<std::uint64_t> truth;
  ZipfSampler zipf(5000, 1.1);
  Rng rng(43);
  const std::uint64_t n = 200'000;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t key = zipf.sample(rng);
    sketch.add(key);
    truth.add(key);
  }
  // Any key with true frequency > N/m must be monitored.
  for (const auto& entry : truth.entries()) {
    if (entry.count > n / capacity) {
      EXPECT_TRUE(sketch.estimate(entry.key).has_value())
          << "heavy key " << entry.key << " (count " << entry.count
          << ") missing at capacity " << capacity;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, SpaceSavingProperty,
                         ::testing::Values(8, 64, 256, 1024, 4096));

TEST(SpaceSaving, WorksWithStringKeys) {
  SpaceSaving<std::string> s(4);
  s.add("asia");
  s.add("asia");
  s.add("europe");
  EXPECT_EQ(s.estimate("asia")->count, 2u);
  EXPECT_EQ(s.estimate("europe")->count, 1u);
}

// --- ExactCounter ------------------------------------------------------------

TEST(ExactCounter, CountsExactly) {
  ExactCounter<int> c;
  c.add(1, 3);
  c.add(2);
  c.add(1);
  EXPECT_EQ(c.count(1), 4u);
  EXPECT_EQ(c.count(2), 1u);
  EXPECT_EQ(c.count(99), 0u);
  EXPECT_EQ(c.total(), 5u);
  EXPECT_EQ(c.size(), 2u);
}

TEST(ExactCounter, EntriesSortedAndErrorFree) {
  ExactCounter<int> c;
  c.add(1, 5);
  c.add(2, 10);
  const auto entries = c.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, 2);
  EXPECT_EQ(entries[0].error, 0u);
  EXPECT_EQ(c.top(1).size(), 1u);
}

// --- Zipf ---------------------------------------------------------------------

TEST(Zipf, PmfSumsToOne) {
  ZipfSampler z(100, 1.0);
  double sum = 0;
  for (std::size_t i = 0; i < z.size(); ++i) sum += z.pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, PmfIsMonotoneDecreasing) {
  ZipfSampler z(50, 1.2);
  for (std::size_t i = 1; i < z.size(); ++i) {
    EXPECT_GE(z.pmf(i - 1), z.pmf(i));
  }
}

TEST(Zipf, ExponentZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(z.pmf(i), 0.1, 1e-9);
}

TEST(Zipf, SampleMatchesPmf) {
  ZipfSampler z(20, 1.0);
  Rng rng(5);
  std::map<std::size_t, int> counts;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(counts[i] / static_cast<double>(n), z.pmf(i), 0.01);
  }
}

TEST(Zipf, SingleItemAlwaysRankZero) {
  ZipfSampler z(1, 1.0);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Zipf, PmfOutOfRangeIsZero) {
  ZipfSampler z(5, 1.0);
  EXPECT_EQ(z.pmf(5), 0.0);
}

// --- SpaceSaving: property tests against an exact reference ------------------

// Observable heap invariant: min_count() must be the true minimum over all
// monitored counts once the sketch is full (a broken sift would evict the
// wrong slot and this catches it after arbitrary interleavings).
TEST(SpaceSaving, MinCountIsTrueMinimumUnderChurn) {
  constexpr std::size_t kCapacity = 64;
  IntSketch s(kCapacity);
  ZipfSampler zipf(1000, 1.1);
  Rng rng(21);
  for (int i = 0; i < 20000; ++i) {
    s.add(zipf.sample(rng), 1 + rng.below(3));
    if (s.size() < kCapacity) continue;
    if (i % 97 != 0) continue;  // checking is O(capacity); sample it
    std::uint64_t true_min = ~0ULL;
    for (const auto& e : s.entries()) true_min = std::min(true_min, e.count);
    ASSERT_EQ(s.min_count(), true_min) << "after " << i + 1 << " adds";
  }
}

// ICDT'05 guarantees, checked differentially against exact counts:
//   (1) count is an overestimate:  true <= count
//   (2) the error bound is honest: count - error <= true
//   (3) error never exceeds the smallest monitored count
//   (4) any key with true frequency > N/m is monitored
TEST(SpaceSaving, EvictionErrorBoundsHoldOnZipfStream) {
  constexpr std::size_t kCapacity = 50;
  IntSketch s(kCapacity);
  std::map<std::uint64_t, std::uint64_t> truth;
  ZipfSampler zipf(5000, 1.2);
  Rng rng(42);
  std::uint64_t total = 0;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t key = zipf.sample(rng);
    const std::uint64_t w = 1 + rng.below(4);
    s.add(key, w);
    truth[key] += w;
    total += w;
  }
  ASSERT_EQ(s.total(), total);
  ASSERT_EQ(s.size(), kCapacity);

  const std::uint64_t min_count = s.min_count();
  for (const auto& e : s.entries()) {
    const auto it = truth.find(e.key);
    ASSERT_NE(it, truth.end());
    EXPECT_GE(e.count, it->second) << "key " << e.key;               // (1)
    EXPECT_LE(e.count - e.error, it->second) << "key " << e.key;     // (2)
    EXPECT_LE(e.error, min_count) << "key " << e.key;                // (3)
  }
  for (const auto& [key, count] : truth) {                           // (4)
    if (count > total / kCapacity) {
      EXPECT_TRUE(s.estimate(key).has_value())
          << "heavy hitter " << key << " (count " << count << ") evicted";
    }
  }
}

// The estimate() path and the entries() path must agree for every key.
TEST(SpaceSaving, EstimateMatchesEntries) {
  IntSketch s(32);
  ZipfSampler zipf(300, 1.0);
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) s.add(zipf.sample(rng));
  for (const auto& e : s.entries()) {
    const auto got = s.estimate(e.key);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->count, e.count);
    EXPECT_EQ(got->error, e.error);
  }
}

}  // namespace
}  // namespace lar::sketch
