// Unit tests for lar::common — hashing, RNG, status, strings, stats.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/checksum.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"

namespace lar {
namespace {

// --- hashing ----------------------------------------------------------------

TEST(Hash, Fnv1aMatchesReferenceVectors) {
  // Reference values for 64-bit FNV-1a.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, Fnv1aIsDeterministicAcrossCalls) {
  EXPECT_EQ(fnv1a64("#java"), fnv1a64(std::string("#java")));
}

TEST(Hash, Fnv1aDistinguishesNearbyStrings) {
  EXPECT_NE(fnv1a64("#java"), fnv1a64("#javb"));
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

TEST(Hash, Mix64IsInjectiveOnSample) {
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second) << "collision at " << i;
  }
}

TEST(Hash, Mix64SpreadsSequentialInputs) {
  // Sequential keys must land on varied buckets — the property routing
  // depends on.
  std::array<int, 8> buckets{};
  for (std::uint64_t i = 0; i < 8000; ++i) ++buckets[mix64(i) % 8];
  for (const int b : buckets) {
    EXPECT_GT(b, 800);
    EXPECT_LT(b, 1200);
  }
}

TEST(Hash, HashCombineIsOrderDependent) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Hash, HashPairDistinguishesSwappedKeys) {
  EXPECT_NE(hash_pair(3, 7), hash_pair(7, 3));
}

// --- checksum ---------------------------------------------------------------

TEST(Checksum, MatchesFixedVectors) {
  // Pinned values: the epoch-file format (ckpt/durable.cpp) embeds these
  // checksums on disk, so the function may never change silently.
  EXPECT_EQ(checksum64(0, nullptr, 0), 0xefd01f60ba992926ULL);
  EXPECT_EQ(checksum64(1, nullptr, 0), 0x85bad54dda0e0188ULL);
  EXPECT_EQ(checksum64(0, std::string_view{"abc"}), 0x33ebaf9927cbc5bdULL);
  EXPECT_EQ(checksum64(7, std::string_view{"abc"}), 0xe2b37b825f76aa45ULL);
  EXPECT_EQ(checksum64(42, std::string_view{"locality-aware"}),
            0xa35ea9ccddc86ceeULL);
  const unsigned char bytes[4] = {0x00, 0xff, 0x10, 0x80};
  EXPECT_EQ(checksum64(9, bytes, 4), 0x095379e61bf12742ULL);
}

TEST(Checksum, SeedAndContentBothMatter) {
  EXPECT_NE(checksum64(0, std::string_view{"abc"}),
            checksum64(1, std::string_view{"abc"}));
  EXPECT_NE(checksum64(0, std::string_view{"abc"}),
            checksum64(0, std::string_view{"abd"}));
  // A trailing zero byte must change the sum (length is not absorbed into
  // padding) — torn-write detection depends on it.
  const unsigned char z[1] = {0};
  EXPECT_NE(checksum64(5, nullptr, 0), checksum64(5, z, 1));
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000003ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 10> buckets{};
  for (int i = 0; i < 100'000; ++i) ++buckets[rng.below(10)];
  for (const int b : buckets) {
    EXPECT_GT(b, 9'000);
    EXPECT_LT(b, 11'000);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

// --- status ------------------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kNotFound, "key 42");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.to_string(), "not_found: key 42");
}

TEST(Result, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.value_or(9), 7);
}

TEST(Result, HoldsError) {
  Result<int> r(Status(ErrorCode::kClosed, "gone"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kClosed);
  EXPECT_EQ(r.value_or(9), 9);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// --- strings -----------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleToken) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, JoinRoundTrip) {
  EXPECT_EQ(join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("solid"), "solid");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(12), "12.0 B");
  EXPECT_EQ(format_bytes(12'000), "12.0 kB");
  EXPECT_EQ(format_bytes(3'400'000), "3.4 MB");
}

// --- stats -------------------------------------------------------------------

TEST(RunningStat, BasicAggregates) {
  RunningStat s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesSinglePass) {
  // Parallel Welford combine: shard-wise aggregates merged together must
  // agree with one aggregate over the concatenated samples.
  Rng rng(99);
  std::vector<double> samples(1000);
  for (auto& x : samples) x = rng.uniform() * 100.0 - 50.0;

  RunningStat single;
  for (const double x : samples) single.add(x);

  RunningStat merged;
  // Uneven shard sizes, including a singleton and an empty shard.
  const std::size_t cuts[] = {0, 1, 400, 400, 1000};
  for (std::size_t c = 0; c + 1 < std::size(cuts); ++c) {
    RunningStat shard;
    for (std::size_t i = cuts[c]; i < cuts[c + 1]; ++i) shard.add(samples[i]);
    merged.merge(shard);
  }

  EXPECT_EQ(merged.count(), single.count());
  EXPECT_DOUBLE_EQ(merged.mean(), single.mean());
  EXPECT_DOUBLE_EQ(merged.min(), single.min());
  EXPECT_DOUBLE_EQ(merged.max(), single.max());
  EXPECT_NEAR(merged.variance(), single.variance(), 1e-9);
}

TEST(RunningStat, MergeIntoEmptyAndWithEmpty) {
  RunningStat a;
  a.add(2.0);
  a.add(4.0);
  RunningStat empty;
  RunningStat b;
  b.merge(a);  // into empty: copies
  b.merge(empty);  // with empty: no-op
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
  EXPECT_DOUBLE_EQ(b.min(), 2.0);
  EXPECT_DOUBLE_EQ(b.max(), 4.0);
}

TEST(Imbalance, PerfectBalanceIsOne) {
  const std::vector<std::uint64_t> loads{100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(imbalance(loads), 1.0);
}

TEST(Imbalance, SkewDetected) {
  const std::vector<std::uint64_t> loads{300, 100, 100, 100};
  EXPECT_DOUBLE_EQ(imbalance(loads), 300.0 / 150.0);
}

TEST(Imbalance, EmptyAndZeroAreVacuouslyBalanced) {
  EXPECT_DOUBLE_EQ(imbalance({}), 1.0);
  const std::vector<std::uint64_t> zeros{0, 0};
  EXPECT_DOUBLE_EQ(imbalance(zeros), 1.0);
}

}  // namespace
}  // namespace lar
