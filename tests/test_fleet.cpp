// Tests for lar::fleet — multi-tenant serving on one shared server fleet.
//
// Covers: tenant composition into one combined topology (disjoint operator-id
// ranges, prefixed names), joint planning with per-tenant slicing, the
// independent-planning ablation baseline, controller arbitration across
// tenants (max-pressure / any-veto aggregation with noisy-neighbor blame),
// and the threaded runtime's STAGGERED per-tenant reconfiguration waves: a
// wave in tenant A must migrate A's keys exactly once while tenant B keeps
// streaming at full rate — under injected migration delays — without ever
// seeing a wave control message, losing a tuple, or having its tables touched.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "core/manager.hpp"
#include "elastic/controller.hpp"
#include "fleet/fleet.hpp"
#include "obs/export.hpp"
#include "runtime/engine.hpp"
#include "sim/simulator.hpp"
#include "sketch/exact_counter.hpp"
#include "workload/synthetic.hpp"

namespace lar {
namespace {

using elastic::Controller;
using elastic::Reason;
using elastic::ScaleDecision;
using elastic::Signals;

/// Two two-stage tenants ("alpha", "beta") sharing `servers` servers.
fleet::FleetManager make_pair_fleet(std::uint32_t parallelism,
                                    std::uint32_t servers) {
  std::vector<fleet::AppSpec> specs;
  specs.push_back({"alpha", make_two_stage_topology(parallelism)});
  specs.push_back({"beta", make_two_stage_topology(parallelism)});
  return fleet::FleetManager(std::move(specs),
                             {.num_servers = servers, .manager = {}});
}

// --- composition -------------------------------------------------------------

TEST(FleetComposition, DisjointRangesPrefixedNamesSharedPlacement) {
  std::vector<fleet::AppSpec> specs;
  specs.push_back({"alpha", make_two_stage_topology(4)});
  specs.push_back({"beta", make_two_stage_topology(2)});
  fleet::FleetManager fleet(std::move(specs),
                            {.num_servers = 4, .manager = {}});

  ASSERT_EQ(fleet.num_apps(), 2u);
  const Topology& combined = fleet.combined_topology();
  EXPECT_EQ(combined.num_operators(), 6u);

  const fleet::AppContext& alpha = fleet.app(0);
  const fleet::AppContext& beta = fleet.app(1);
  EXPECT_EQ(alpha.op_begin, 0u);
  EXPECT_EQ(alpha.op_end, 3u);
  EXPECT_EQ(beta.op_begin, 3u);
  EXPECT_EQ(beta.op_end, 6u);
  EXPECT_EQ(alpha.sources, (std::vector<OperatorId>{0}));
  EXPECT_EQ(beta.sources, (std::vector<OperatorId>{3}));
  EXPECT_EQ(combined.op(0).name, "alpha/S");
  EXPECT_EQ(combined.op(2).name, "alpha/B");
  EXPECT_EQ(combined.op(3).name, "beta/S");
  EXPECT_EQ(combined.op(5).name, "beta/B");
  // Tenant parallelism survives composition verbatim.
  EXPECT_EQ(combined.op(1).parallelism, 4u);
  EXPECT_EQ(combined.op(4).parallelism, 2u);
  // No cross-tenant edges: every edge stays inside one tenant's range.
  for (const auto& e : combined.edges()) {
    EXPECT_EQ(fleet.app_of(e.from), fleet.app_of(e.to));
  }
  // One shared placement over the whole fleet.
  EXPECT_EQ(fleet.combined_placement().num_servers(), 4u);
  EXPECT_EQ(fleet.app_of(2), 0u);
  EXPECT_EQ(fleet.app_of(3), 1u);
}

// --- joint planning + slicing ------------------------------------------------

/// One hop's worth of pair statistics for tenant `app` of a pair fleet:
/// `keys` correlated key pairs on the A -> B hop.
core::HopStats tenant_hop(const fleet::FleetManager& fleet, fleet::AppId app,
                          std::uint32_t keys, std::uint64_t seed) {
  const fleet::AppContext& ctx = fleet.app(app);
  core::HopStats hop;
  hop.in_op = ctx.op_begin + 1;   // A
  hop.out_op = ctx.op_begin + 2;  // B
  Rng rng(seed);
  for (Key k = 0; k < keys; ++k) {
    hop.pairs.push_back({k, (k * 3) % keys, 10 + rng.next() % 50});
  }
  return hop;
}

TEST(FleetPlanning, JointPlanSlicesToTheRequestedTenant) {
  fleet::FleetManager fleet = make_pair_fleet(4, 4);
  obs::Registry registry;
  fleet.set_metrics_registry(&registry);
  EXPECT_DOUBLE_EQ(registry.gauge("lar_fleet_apps", {}).value(), 2.0);

  const std::vector<core::HopStats> stats = {tenant_hop(fleet, 0, 48, 7),
                                             tenant_hop(fleet, 1, 48, 8)};
  const auto plan = fleet.plan_app(0, stats);
  EXPECT_GT(plan.tables.size(), 0u);
  std::uint64_t keys = 0;
  for (const auto& [op, table] : plan.tables) {
    EXPECT_TRUE(fleet.app(0).contains(op)) << "op " << op << " leaked";
    keys += table->size();
  }
  for (const auto& [op, moves] : plan.moves) {
    EXPECT_TRUE(fleet.app(0).contains(op)) << moves.size() << " moves leaked";
  }
  EXPECT_EQ(plan.keys_assigned, keys);  // recomputed for the slice

  fleet.mark_deployed(0, plan);
  EXPECT_EQ(fleet.app(0).plan_version, plan.version);
  EXPECT_EQ(fleet.app(1).plan_version, 0u);  // beta untouched
  // Per-tenant plan gauges carry the app label through obs::Scoped.
  EXPECT_DOUBLE_EQ(
      registry.gauge("lar_fleet_plan_version", {{"app", "alpha"}}).value(),
      static_cast<double>(plan.version));
}

TEST(FleetPlanning, SingleTenantJointPlanMatchesPlainManager) {
  // A one-app fleet must plan exactly like the unmodified Manager over the
  // tenant's own topology: same table entries, same fallback domains — the
  // planner never sees the fleet wrapper, only operator ids.
  std::vector<fleet::AppSpec> specs;
  specs.push_back({"solo", make_two_stage_topology(4)});
  fleet::FleetManager fleet(std::move(specs),
                            {.num_servers = 4, .manager = {}});
  const Topology plain_topo = make_two_stage_topology(4);
  const Placement plain_place = Placement::round_robin(plain_topo, 4);
  core::Manager plain(plain_topo, plain_place, {});

  const std::vector<core::HopStats> stats = {tenant_hop(fleet, 0, 64, 11)};
  const auto fleet_plan = fleet.plan_app(0, stats);
  const auto plain_plan = plain.compute_plan(stats);
  ASSERT_EQ(fleet_plan.tables.size(), plain_plan.tables.size());
  for (const auto& [op, table] : plain_plan.tables) {
    ASSERT_TRUE(fleet_plan.tables.contains(op));
    EXPECT_EQ(fleet_plan.tables.at(op)->sorted_entries(),
              table->sorted_entries());
    EXPECT_EQ(fleet_plan.tables.at(op)->fallback(), table->fallback());
  }
  EXPECT_EQ(fleet_plan.keys_assigned, plain_plan.keys_assigned);
}

TEST(FleetPlanning, IndependentBaselineIgnoresTheNeighborsLoad) {
  // plan_app_independent feeds the per-tenant planner ONLY the tenant's own
  // hops; the joint path sees both.  Both must produce in-app slices, and
  // the independent slice must equal a solo Manager run given the same
  // single-tenant statistics (it literally cannot see the neighbor).
  fleet::FleetManager fleet = make_pair_fleet(4, 4);
  const std::vector<core::HopStats> stats = {tenant_hop(fleet, 0, 48, 21),
                                             tenant_hop(fleet, 1, 48, 21)};
  const auto indep = fleet.plan_app_independent(0, stats);
  for (const auto& [op, table] : indep.tables) {
    EXPECT_TRUE(fleet.app(0).contains(op));
  }
  const auto joint = fleet.plan_app(0, stats);
  // Same tenant, same stats set: both assign the tenant's keys.
  EXPECT_EQ(indep.keys_assigned, joint.keys_assigned);
}

// --- controller arbitration --------------------------------------------------

TEST(FleetArbitration, AggregateIsMaxPressureMinLocalityAnyVeto) {
  fleet::FleetManager fleet = make_pair_fleet(2, 2);
  std::vector<Signals> per_app(2);
  per_app[0].utilization = 0.3;
  per_app[0].locality = 0.9;
  per_app[0].balance = 1.1;
  per_app[0].health_veto = 1.0;  // alpha mid-migration
  per_app[1].utilization = 1.5;  // beta is the noisy neighbor
  per_app[1].locality = 0.4;
  per_app[1].balance = 2.0;
  per_app[1].queue_hwm = 0.8;

  const auto arb = fleet.arbitrate(per_app);
  EXPECT_DOUBLE_EQ(arb.combined.utilization, 1.5);
  EXPECT_DOUBLE_EQ(arb.combined.locality, 0.4);   // min: worst tenant
  EXPECT_DOUBLE_EQ(arb.combined.balance, 2.0);
  EXPECT_DOUBLE_EQ(arb.combined.queue_hwm, 0.8);
  EXPECT_DOUBLE_EQ(arb.combined.health_veto, 1.0);  // any veto pins
  EXPECT_EQ(arb.dominant, 1u);
}

TEST(FleetArbitration, NoisyNeighborTakesTheScaleOutBlame) {
  fleet::FleetManager fleet = make_pair_fleet(2, 4);
  std::vector<Signals> per_app(2);
  per_app[0].utilization = 0.4;
  per_app[0].locality = 0.9;
  per_app[1].utilization = 1.6;
  per_app[1].locality = 0.8;

  obs::Registry registry;
  Controller controller({.min_servers = 2,
                         .max_servers = 16,
                         .confirm_epochs = 2,
                         .cooldown_epochs = 2});
  std::uint32_t servers = 4;
  for (int epoch = 0; epoch < 2; ++epoch) {
    const auto arb = fleet.arbitrate(per_app);
    const ScaleDecision d = controller.evaluate(arb.combined, servers);
    elastic::publish_decision(registry, d, fleet.app(arb.dominant).name);
    if (d.changed(servers)) servers = d.target_servers;
  }
  EXPECT_EQ(servers, 8u);  // the fleet scaled out...
  // ...and the decision counter charges beta, not alpha.
  EXPECT_EQ(registry
                .counter("lar_elastic_decisions_total",
                         {{"app", "beta"}, {"reason", "overload"}})
                .value(),
            1u);
  EXPECT_EQ(registry
                .counter("lar_elastic_decisions_total",
                         {{"app", "beta"}, {"reason", "confirming"}})
                .value(),
            1u);
  EXPECT_EQ(registry
                .counter("lar_elastic_decisions_total",
                         {{"app", "alpha"}, {"reason", "overload"}})
                .value(),
            0u);
}

// --- engine fixtures (mirrors test_elastic.cpp) ------------------------------

/// Operator factory for a fleet of two-stage tenants: each tenant's range is
/// (source, A counting field 0, B counting field 1).
runtime::OperatorFactory fleet_counting_factory() {
  return [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    switch (op % 3) {
      case 0: return std::make_unique<runtime::PassThroughOperator>();
      case 1: return std::make_unique<runtime::CountingOperator>(0);
      default: return std::make_unique<runtime::CountingOperator>(1);
    }
  };
}

runtime::CountingOperator& counter_at(runtime::Engine& engine, OperatorId op,
                                      InstanceIndex i) {
  return static_cast<runtime::CountingOperator&>(engine.operator_at(op, i));
}

struct GroundTruth {
  sketch::ExactCounter<Key> field0;
  sketch::ExactCounter<Key> field1;
};

void pump_app(runtime::Engine& engine, fleet::AppId app,
              workload::TupleGenerator& gen, int n, GroundTruth& truth) {
  for (int i = 0; i < n; ++i) {
    Tuple t = gen.next();
    truth.field0.add(t.fields[0]);
    truth.field1.add(t.fields[1]);
    engine.inject_app(app, std::move(t));
  }
}

void expect_counts_match(runtime::Engine& engine, OperatorId op,
                         std::uint32_t par,
                         const sketch::ExactCounter<Key>& truth) {
  for (const auto& entry : truth.entries()) {
    std::uint64_t sum = 0;
    int holders = 0;
    for (InstanceIndex i = 0; i < par; ++i) {
      const std::uint64_t c = counter_at(engine, op, i).count(entry.key);
      sum += c;
      holders += (c > 0);
    }
    ASSERT_EQ(sum, entry.count) << "op " << op << " key " << entry.key;
    ASSERT_EQ(holders, 1) << "op " << op << " key " << entry.key
                          << " split across instances";
  }
}

/// Streams one tenant from a dedicated thread until stopped, recording
/// ground truth and an injected-tuple count, so a neighbor's wave overlaps
/// a full-rate live stream.
class AppFeeder {
 public:
  AppFeeder(runtime::Engine& engine, fleet::AppId app, GroundTruth& truth,
            workload::TupleGenerator& gen)
      : thread_([this, &engine, app, &truth, &gen] {
          while (!stop_.load()) {
            Tuple t = gen.next();
            truth.field0.add(t.fields[0]);
            truth.field1.add(t.fields[1]);
            engine.inject_app(app, std::move(t));
            injected_.fetch_add(1, std::memory_order_relaxed);
          }
        }) {}

  [[nodiscard]] std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  void stop() {
    stop_ = true;
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> injected_{0};
  std::thread thread_;
};

// --- engine: staggered per-tenant waves --------------------------------------

TEST(EngineFleet, StaggeredWaveMigratesOneTenantWhileTheOtherStreams) {
  // Tenant alpha runs a reconfiguration wave under injected migration
  // delays (every MIGRATE redelivered 3x) while tenant beta streams at
  // full rate from its own thread.  The wave is app-scoped: beta's tables
  // and plan version stay untouched, beta's stream keeps flowing DURING
  // the wave (its producers never hit alpha's fences), and both tenants
  // end exactly-once.
  const std::uint32_t par = 4;
  fleet::FleetManager fleet = make_pair_fleet(par, par);
  chaos::FaultPlan fault_plan(911);
  fault_plan.set(chaos::FaultSite::kMigrateDelay, {.rate = 1.0, .magnitude = 3});
  chaos::Injector inj(fault_plan);
  runtime::Engine engine(fleet.combined_topology(), fleet.combined_placement(),
                         fleet_counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .injector = &inj,
                          .fleet = &fleet});
  engine.start();

  // Warm alpha with enough correlated traffic that its wave has real work.
  GroundTruth truth_a;
  workload::SyntheticGenerator gen_a(
      {.num_values = 60, .locality = 0.9, .padding = 0, .seed = 71});
  pump_app(engine, 0, gen_a, 12'000, truth_a);
  engine.flush();

  GroundTruth truth_b;
  workload::SyntheticGenerator gen_b(
      {.num_values = 60, .locality = 0.9, .padding = 0, .seed = 72});
  AppFeeder feeder(engine, 1, truth_b, gen_b);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const std::uint64_t before_wave = feeder.injected();
  const auto plan = engine.reconfigure_app(0);
  const std::uint64_t after_wave = feeder.injected();
  EXPECT_GT(plan.total_moves(), 0u);  // alpha really migrated state
  // Beta streamed THROUGH the wave: its feeder was never parked on a fence.
  EXPECT_GT(after_wave, before_wave);

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  feeder.stop();
  engine.flush();

  // The wave stayed inside alpha's range.
  for (const auto& [op, table] : plan.tables) {
    EXPECT_TRUE(fleet.app(0).contains(op));
  }
  EXPECT_EQ(fleet.app(0).plan_version, plan.version);
  EXPECT_EQ(fleet.app(1).plan_version, 0u);
  EXPECT_GT(inj.fired(chaos::FaultSite::kMigrateDelay), 0u);

  // Exactly-once on both sides of the fence.
  expect_counts_match(engine, 1, par, truth_a.field0);
  expect_counts_match(engine, 2, par, truth_a.field1);
  expect_counts_match(engine, 4, par, truth_b.field0);
  expect_counts_match(engine, 5, par, truth_b.field1);
  const auto m = engine.metrics();
  EXPECT_GT(m.states_migrated, 0u);
  engine.shutdown();
}

TEST(EngineFleet, AlternatingTenantWavesStayExactlyOnce) {
  // Waves alternate tenants against live streams on BOTH: each wave only
  // moves its own tenant's keys, and after three staggered rounds every
  // key of every tenant is held exactly once.
  const std::uint32_t par = 4;
  fleet::FleetManager fleet = make_pair_fleet(par, par);
  chaos::FaultPlan fault_plan(912);
  fault_plan.set(chaos::FaultSite::kChannelDuplicate, {.rate = 0.01});
  chaos::Injector inj(fault_plan);
  runtime::Engine engine(fleet.combined_topology(), fleet.combined_placement(),
                         fleet_counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .injector = &inj,
                          .fleet = &fleet});
  engine.start();

  GroundTruth truth_a;
  GroundTruth truth_b;
  workload::SyntheticGenerator gen_a(
      {.num_values = 50, .locality = 0.85, .padding = 0, .seed = 73});
  workload::SyntheticGenerator gen_b(
      {.num_values = 50, .locality = 0.85, .padding = 0, .seed = 74});
  AppFeeder feeder_a(engine, 0, truth_a, gen_a);
  AppFeeder feeder_b(engine, 1, truth_b, gen_b);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  (void)engine.reconfigure_app(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (void)engine.reconfigure_app(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (void)engine.reconfigure_app(0);
  feeder_a.stop();
  feeder_b.stop();
  engine.flush();

  expect_counts_match(engine, 1, par, truth_a.field0);
  expect_counts_match(engine, 2, par, truth_a.field1);
  expect_counts_match(engine, 4, par, truth_b.field0);
  expect_counts_match(engine, 5, par, truth_b.field1);
  // Dedup absorbed the duplicated deliveries (the counts above prove it);
  // the injector really fired.
  EXPECT_GT(inj.fired(chaos::FaultSite::kChannelDuplicate), 0u);
  engine.shutdown();
}

TEST(EngineFleet, PerTenantMetricsCarryTheAppLabel) {
  const std::uint32_t par = 2;
  fleet::FleetManager fleet = make_pair_fleet(par, par);
  obs::Registry registry;
  fleet.set_metrics_registry(&registry);
  runtime::Engine engine(fleet.combined_topology(), fleet.combined_placement(),
                         fleet_counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .registry = &registry,
                          .fleet = &fleet});
  engine.start();
  GroundTruth truth_a;
  GroundTruth truth_b;
  workload::SyntheticGenerator gen(
      {.num_values = 20, .locality = 0.8, .padding = 0, .seed = 75});
  pump_app(engine, 0, gen, 3'000, truth_a);
  pump_app(engine, 1, gen, 1'000, truth_b);
  engine.flush();
  engine.publish_metrics();

  EXPECT_EQ(registry
                .counter("lar_tuples_injected_total", {{"app", "alpha"}})
                .value(),
            3'000u);
  EXPECT_EQ(registry
                .counter("lar_tuples_injected_total", {{"app", "beta"}})
                .value(),
            1'000u);
  // Per-edge and per-op families are tenant-attributed too: the prefixed
  // operator names and the app label appear together.
  const std::string text = obs::to_prometheus(registry);
  EXPECT_NE(text.find("app=\"alpha\""), std::string::npos);
  EXPECT_NE(text.find("alpha/A"), std::string::npos);
  EXPECT_NE(text.find("app=\"beta\""), std::string::npos);
  engine.shutdown();
}

// --- simulator: tenant-scoped rounds -----------------------------------------

TEST(SimFleet, ScopedRoundResetsOnlyTheTenantsStatistics) {
  const std::uint32_t par = 4;
  fleet::FleetManager fleet = make_pair_fleet(par, par);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  sim::Simulator simulator(fleet.combined_topology(),
                           fleet.combined_placement(), cfg,
                           FieldsRouting::kTable);
  workload::SyntheticGenerator gen(
      {.num_values = 80, .locality = 0.85, .padding = 0, .seed = 76});
  const auto report = simulator.run_window(gen, 6'000);

  // The combined model feeds every tenant's source, so each tenant's B
  // stage processed the full window (per-app conservation).
  for (const fleet::AppId app : {fleet::AppId{0}, fleet::AppId{1}}) {
    const auto& ctx = fleet.app(app);
    std::uint64_t total = 0;
    for (const std::uint64_t l :
         simulator.model().stats().instance_load[ctx.op_begin + 2]) {
      total += l;
    }
    EXPECT_EQ(total, report.window_tuples) << "app " << app;
  }

  const auto plan = simulator.reconfigure_app(fleet, 0);
  EXPECT_GT(plan.total_moves(), 0u);
  for (const auto& [op, table] : plan.tables) {
    EXPECT_TRUE(fleet.app(0).contains(op));
  }
  EXPECT_EQ(fleet.app(0).plan_version, plan.version);
  EXPECT_EQ(fleet.app(1).plan_version, 0u);

  // Alpha's consumed statistics reset; beta's keep accumulating toward its
  // own wave.
  for (const auto& hop : simulator.model().collect_hop_stats()) {
    if (fleet.app(0).contains(hop.out_op)) {
      EXPECT_TRUE(hop.pairs.empty()) << "alpha stats survived its own wave";
    } else {
      EXPECT_FALSE(hop.pairs.empty()) << "beta stats were wiped by alpha";
    }
  }
}

TEST(SimFleet, JointPlanningBalancesWhatIndependentCollides) {
  // The tentpole's reason to exist, in miniature: two tenants with the SAME
  // skewed workload.  Independent planning solves each tenant in isolation
  // over identical key graphs, so both tenants' heavy keys land on the same
  // shared servers; joint planning sees the summed per-server mass and
  // interleaves them.  Joint max/mean server load must beat independent.
  const std::uint32_t par = 6;
  auto run = [&](sim::Simulator::FleetPlanMode mode) {
    fleet::FleetManager fleet = make_pair_fleet(par, par);
    sim::SimConfig cfg;
    cfg.source_mode = SourceMode::kRoundRobin;
    sim::Simulator simulator(fleet.combined_topology(),
                             fleet.combined_placement(), cfg,
                             FieldsRouting::kTable);
    // Few values + high locality: a handful of heavy key pairs per tenant,
    // heavy enough that placement (not hashing) decides server load.
    workload::SyntheticGenerator learn(
        {.num_values = 12, .locality = 0.95, .padding = 0, .seed = 77});
    simulator.run_window(learn, 8'000);
    (void)simulator.reconfigure_app(fleet, 0, mode);
    (void)simulator.reconfigure_app(fleet, 1, mode);
    workload::SyntheticGenerator measure(
        {.num_values = 12, .locality = 0.95, .padding = 0, .seed = 77});
    simulator.run_window(measure, 8'000);
    const auto& cpu = simulator.model().stats().cpu_units;
    double max = 0.0;
    double sum = 0.0;
    for (const double c : cpu) {
      max = max > c ? max : c;
      sum += c;
    }
    return max / (sum / static_cast<double>(cpu.size()));
  };
  const double joint = run(sim::Simulator::FleetPlanMode::kJoint);
  const double independent = run(sim::Simulator::FleetPlanMode::kIndependent);
  EXPECT_LE(joint, independent + 1e-9);
}

}  // namespace
}  // namespace lar
