// lar::FlatMap: differential fuzz against std::unordered_map, canonical
// iteration, backward-shift deletion, and heterogeneous string lookup.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"

namespace lar {
namespace {

TEST(FlatMap, BasicInsertLookupOverwrite) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(7), nullptr);

  m[7] = 1;
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 1);
  EXPECT_EQ(m.size(), 1u);

  m[7] = 2;  // overwrite, no growth
  EXPECT_EQ(*m.find(7), 2);
  EXPECT_EQ(m.size(), 1u);

  EXPECT_TRUE(m.insert_or_assign(8, 3));   // new key
  EXPECT_FALSE(m.insert_or_assign(8, 4));  // existing key
  EXPECT_EQ(*m.find(8), 4);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatMap, EraseMissingAndPresent) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_FALSE(m.erase(1));
  m[1] = 10;
  m[2] = 20;
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  ASSERT_NE(m.find(2), nullptr);
  EXPECT_EQ(*m.find(2), 20);
  EXPECT_EQ(m.size(), 1u);
}

// The map must survive long adversarial probe chains: many keys hashing into
// the same neighbourhood, interleaved with erases (the backward-shift path).
TEST(FlatMap, BackwardShiftKeepsCollidingChainsReachable) {
  // DetHash is a bijection on uint64, so force collisions structurally: a
  // tiny map (capacity 16) makes every key collide with ~1/16 probability,
  // and we never let it grow past 64 slots.
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(99);
  for (int round = 0; round < 2000; ++round) {
    const std::uint64_t key = rng.below(48);  // dense universe -> collisions
    if (rng.below(3) == 0) {
      EXPECT_EQ(m.erase(key), ref.erase(key) > 0) << "round " << round;
    } else {
      m[key] = round;
      ref[key] = static_cast<std::uint64_t>(round);
    }
    ASSERT_EQ(m.size(), ref.size()) << "round " << round;
  }
  for (const auto& [k, v] : ref) {
    const std::uint64_t* got = m.find(k);
    ASSERT_NE(got, nullptr) << "lost key " << k;
    EXPECT_EQ(*got, v);
  }
}

TEST(FlatMap, DifferentialFuzzAgainstUnorderedMap) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(12345);
  for (int round = 0; round < 20000; ++round) {
    const std::uint64_t key = rng.below(4096);
    switch (rng.below(4)) {
      case 0:  // insert / overwrite via operator[]
        m[key] = round;
        ref[key] = static_cast<std::uint64_t>(round);
        break;
      case 1: {  // insert_or_assign, check the inserted flag
        const bool inserted = m.insert_or_assign(key, round);
        EXPECT_EQ(inserted, ref.find(key) == ref.end());
        ref[key] = static_cast<std::uint64_t>(round);
        break;
      }
      case 2:  // erase
        EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
        break;
      case 3: {  // lookup
        const std::uint64_t* got = m.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(got != nullptr, it != ref.end()) << "round " << round;
        if (got != nullptr) {
          EXPECT_EQ(*got, it->second);
        }
        EXPECT_EQ(m.contains(key), got != nullptr);
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size()) << "round " << round;
  }
  // Full-content comparison both ways.
  std::size_t visited = 0;
  m.for_each([&](std::uint64_t k, std::uint64_t v) {
    ++visited;
    const auto it = ref.find(k);
    ASSERT_NE(it, ref.end()) << "phantom key " << k;
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

// sorted_items() must depend only on the key *set*, never on history.
TEST(FlatMap, SortedItemsCanonicalAcrossInsertionOrders) {
  std::vector<std::uint64_t> keys;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) keys.push_back(rng.next());

  FlatMap<std::uint64_t, std::uint64_t> forward;
  for (const std::uint64_t k : keys) forward[k] = k * 2;

  FlatMap<std::uint64_t, std::uint64_t> backward;
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) (backward)[*it] = *it * 2;

  // A third map that churns: insert everything twice with erases in between.
  FlatMap<std::uint64_t, std::uint64_t> churned;
  for (const std::uint64_t k : keys) churned[k] = 0;
  for (std::size_t i = 0; i < keys.size(); i += 2) churned.erase(keys[i]);
  for (const std::uint64_t k : keys) churned[k] = k * 2;

  const auto a = forward.sorted_items();
  const auto b = backward.sorted_items();
  const auto c = churned.sorted_items();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(), [](const auto& x, const auto& y) {
    return x.key < y.key;
  }));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].value, b[i].value);
    EXPECT_EQ(a[i].key, c[i].key);
    EXPECT_EQ(a[i].value, c[i].value);
  }
}

TEST(FlatMap, ClearEmptiesAndAllowsReuse) {
  FlatMap<std::uint64_t, int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = 1;
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(5), nullptr);
  m[5] = 42;
  EXPECT_EQ(*m.find(5), 42);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, ReserveAvoidsInvalidatingGrowthMidLoop) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  m.reserve(1000);
  const std::uint64_t* first = nullptr;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    m[k] = k;
    if (k == 0) first = m.find(0);
  }
  // No rehash happened during the loop: the first slot pointer still holds.
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(*first, 0u);
  EXPECT_EQ(m.size(), 1000u);
}

TEST(FlatMap, StringKeysWithHeterogeneousLookup) {
  FlatMap<std::string, int> m;
  m["tokyo"] = 1;
  m["osaka"] = 2;
  // Lookup by string_view must not allocate a temporary std::string.
  const std::string_view sv = "tokyo";
  ASSERT_NE(m.find(sv), nullptr);
  EXPECT_EQ(*m.find(sv), 1);
  EXPECT_NE(m.find(std::string_view{"osaka"}), nullptr);
  EXPECT_EQ(m.find(std::string_view{"kyoto"}), nullptr);

  const auto items = m.sorted_items();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].key, "osaka");
  EXPECT_EQ(items[1].key, "tokyo");
}

TEST(FlatMap, IteratorVisitsEveryEntryOnce) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t k = 10; k < 30; ++k) m[k] = k + 1;
  std::vector<std::uint64_t> seen;
  for (const auto& item : m) {
    EXPECT_EQ(item.value, item.key + 1);
    seen.push_back(item.key);
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 20u);
  for (std::uint64_t k = 10; k < 30; ++k) EXPECT_EQ(seen[k - 10], k);
}

}  // namespace
}  // namespace lar
