// Cross-module integration tests: runtime vs simulator agreement, the
// online-vs-offline experiment in miniature, and trace-driven replay.
#include <gtest/gtest.h>

#include "core/manager.hpp"
#include "runtime/engine.hpp"
#include "sim/simulator.hpp"
#include "sketch/exact_counter.hpp"
#include "workload/flickr_like.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"
#include "workload/twitter_like.hpp"

#include <filesystem>

namespace lar {
namespace {

runtime::OperatorFactory counting_factory() {
  return [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
    return std::make_unique<runtime::CountingOperator>(op == 1 ? 0 : 1);
  };
}

TEST(Integration, RuntimeAndSimulatorAgreeOnLocality) {
  // The same topology, placement, routing mode and workload must yield the
  // same per-edge locality in both engines (they share Router code paths).
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);

  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kIdentity);
  workload::SyntheticGenerator sim_gen(
      {.num_values = n, .locality = 0.7, .padding = 0, .seed = 31});
  const auto sim_report = simulator.run_window(sim_gen, 30'000);

  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kIdentity,
                          .source_mode = SourceMode::kAlignedField0});
  engine.start();
  workload::SyntheticGenerator rt_gen(
      {.num_values = n, .locality = 0.7, .padding = 0, .seed = 31});
  for (int i = 0; i < 30'000; ++i) engine.inject(rt_gen.next());
  engine.flush();
  const auto m = engine.metrics();
  const double rt_locality =
      static_cast<double>(m.edges[1].local) /
      static_cast<double>(m.edges[1].local + m.edges[1].remote);

  EXPECT_NEAR(sim_report.edge_locality[1], rt_locality, 1e-9)
      << "same seed, same routers: localities must match exactly";
  engine.shutdown();
}

TEST(Integration, PlanComputedInSimWorksInRuntime) {
  // Offline workflow: learn tables in the cheap simulator, deploy them in
  // the real engine, observe the same locality gain.
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager mgr(topo, place, {});
  workload::FlickrLikeConfig wcfg;
  wcfg.num_tags = 500;
  wcfg.num_countries = 30;
  wcfg.correlation = 0.7;
  wcfg.seed = 32;
  workload::FlickrLikeGenerator train(wcfg);
  simulator.run_window(train, 40'000);
  const auto plan = simulator.reconfigure(mgr);
  ASSERT_GT(plan.keys_assigned, 0u);

  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable});
  engine.start();
  // Deploy via the full protocol: seed a manager that already computed the
  // plan by replaying the table deployment through a live reconfigure is
  // overkill here; instead verify tables directly steer the runtime by
  // constructing it with kTable and injecting the learned tables through a
  // live reconfiguration round on the same training data.
  core::Manager rt_mgr(topo, place, {});
  workload::FlickrLikeGenerator replay(wcfg);
  for (int i = 0; i < 40'000; ++i) engine.inject(replay.next());
  engine.flush();
  engine.reconfigure(rt_mgr);
  const auto before = engine.metrics();
  workload::FlickrLikeGenerator test(wcfg);
  for (int i = 0; i < 20'000; ++i) engine.inject(test.next());
  engine.flush();
  const auto after = engine.metrics();
  const double locality =
      static_cast<double>(after.edges[1].local - before.edges[1].local) /
      20'000.0;
  EXPECT_GT(locality, 0.6);
  engine.shutdown();
}

TEST(Integration, OnlineBeatsOfflineOnDriftingWorkload) {
  // Figure 11a in miniature: with drifting correlations, weekly
  // reconfiguration sustains locality, a single one decays toward the
  // stable-correlation floor, hash stays at 1/n.
  const std::uint32_t n = 6;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  workload::TwitterLikeConfig wcfg;
  wcfg.num_locations = 60;
  wcfg.num_hashtags = 3000;
  wcfg.new_keys_per_epoch = 300;
  wcfg.seed = 33;

  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;

  auto run = [&](bool online, bool any_reconfig) {
    sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
    core::Manager mgr(topo, place, {});
    workload::TwitterLikeGenerator gen(wcfg);
    const std::uint64_t week = 40'000;
    const int weeks = 8;
    double tail_locality = 0;  // mean of the last 4 weeks (steady state)
    for (int w = 0; w < weeks; ++w) {
      const auto report = simulator.run_window(gen, week);
      if (w >= weeks - 4) tail_locality += report.edge_locality[1] / 4.0;
      if (any_reconfig && (online || w == 0)) simulator.reconfigure(mgr);
      gen.advance_epoch();
    }
    return tail_locality;
  };

  const double hash = run(false, false);
  const double offline = run(false, true);
  const double online = run(true, true);
  EXPECT_NEAR(hash, 1.0 / 6.0, 0.04);
  EXPECT_GT(offline, hash + 0.1);
  EXPECT_GT(online, offline + 0.02);
}

TEST(Integration, TraceReplayReproducesCountsExactly) {
  const std::uint32_t n = 2;
  const std::string path =
      (std::filesystem::temp_directory_path() / "lar_integration_trace.bin")
          .string();
  workload::SyntheticGenerator gen(
      {.num_values = 40, .locality = 0.6, .padding = 2, .seed = 34});
  ASSERT_TRUE(workload::record_trace(gen, 5000, path).is_ok());

  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);

  auto run_counts = [&](workload::TupleGenerator& source) {
    runtime::Engine engine(topo, place, counting_factory(), {});
    engine.start();
    for (int i = 0; i < 5000; ++i) engine.inject(source.next());
    engine.flush();
    std::map<Key, std::uint64_t> counts;
    for (InstanceIndex i = 0; i < n; ++i) {
      for (const auto& [k, c] :
           static_cast<runtime::CountingOperator&>(engine.operator_at(2, i))
               .counts()) {
        counts[k] += c;
      }
    }
    engine.shutdown();
    return counts;
  };

  workload::TraceReader replay1(path);
  ASSERT_TRUE(replay1.status().is_ok());
  workload::TraceReader replay2(path);
  const auto a = run_counts(replay1);
  const auto b = run_counts(replay2);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
  std::filesystem::remove(path);
}

TEST(Integration, StatisticsBudgetDegradesGracefully) {
  // Figure 12 in miniature: locality grows with the edge budget.
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  workload::TwitterLikeConfig wcfg;
  wcfg.num_locations = 50;
  wcfg.num_hashtags = 2000;
  wcfg.new_key_fraction = 0.0;
  wcfg.seed = 35;

  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;

  auto locality_with_budget = [&](std::size_t top_edges) {
    sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
    core::ManagerOptions mopts;
    mopts.top_edges = top_edges;
    core::Manager mgr(topo, place, mopts);
    workload::TwitterLikeGenerator gen(wcfg);
    simulator.run_window(gen, 60'000);
    simulator.reconfigure(mgr);
    return simulator.run_window(gen, 60'000).edge_locality[1];
  };

  const double tiny = locality_with_budget(20);
  const double medium = locality_with_budget(500);
  const double full = locality_with_budget(0);
  EXPECT_LT(tiny, medium);
  EXPECT_LE(medium, full + 0.02);
  EXPECT_GT(full, 0.3);
}

TEST(Integration, AlphaAblationTradesBalanceForLocality) {
  // DESIGN.md ablation: a looser alpha admits better locality but worse
  // balance on a skewed workload.
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  workload::FlickrLikeConfig wcfg;
  wcfg.num_tags = 3000;
  wcfg.zipf_tags = 1.15;
  wcfg.correlation = 0.8;
  wcfg.seed = 36;

  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;

  auto plan_with_alpha = [&](double alpha) {
    sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
    core::ManagerOptions mopts;
    mopts.partition.alpha = alpha;
    core::Manager mgr(topo, place, mopts);
    workload::FlickrLikeGenerator gen(wcfg);
    simulator.run_window(gen, 60'000);
    return simulator.reconfigure(mgr);
  };

  const auto tight = plan_with_alpha(1.01);
  const auto loose = plan_with_alpha(1.50);
  EXPECT_GE(loose.expected_locality, tight.expected_locality);
  EXPECT_LE(tight.imbalance, loose.imbalance + 0.02);
}

}  // namespace
}  // namespace lar

namespace lar {
namespace {

TEST(Integration, SimAndRuntimeProduceIdenticalPlansFromTheSameStream) {
  // With exact pair statistics, both engines observe the same pair SET for
  // the same tuples, the builder canonicalizes ordering, and the partitioner
  // is seeded — so the two plans must agree entry for entry.  This pins the
  // engine-agnostic determinism of the whole optimization path.
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  workload::SyntheticGenerator gen(
      {.num_values = 120, .locality = 0.8, .padding = 0, .seed = 91});
  std::vector<Tuple> stream;
  for (int i = 0; i < 20'000; ++i) stream.push_back(gen.next());

  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.pair_stats_capacity = 0;  // exact
  sim::PipelineModel model(topo, place, cfg, FieldsRouting::kHash);
  for (const Tuple& t : stream) model.process(t);
  core::Manager sim_mgr(topo, place, {});
  const auto sim_plan = sim_mgr.compute_plan(model.collect_hop_stats());

  runtime::Engine engine(
      topo, place,
      [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
        if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
        return std::make_unique<runtime::CountingOperator>(op == 1 ? 0 : 1);
      },
      {.pair_stats_capacity = 0, .fields_mode = FieldsRouting::kHash});
  engine.start();
  for (const Tuple& t : stream) engine.inject(t);
  engine.flush();
  core::Manager rt_mgr(topo, place, {});
  const auto rt_plan = engine.reconfigure(rt_mgr);
  engine.shutdown();

  ASSERT_EQ(sim_plan.tables.size(), rt_plan.tables.size());
  EXPECT_EQ(sim_plan.edge_cut, rt_plan.edge_cut);
  EXPECT_EQ(sim_plan.keys_assigned, rt_plan.keys_assigned);
  for (const auto& [op, table] : sim_plan.tables) {
    ASSERT_TRUE(rt_plan.tables.contains(op));
    const auto& other = rt_plan.tables.at(op);
    ASSERT_EQ(table->size(), other->size());
    for (const auto& [key, inst] : table->sorted_entries()) {
      EXPECT_EQ(other->lookup(key).value(), inst) << "key " << key;
    }
  }
}

}  // namespace
}  // namespace lar
