// Stress and fuzz tests: randomized configurations end-to-end, protocol
// torture under a live stream, concurrent channel traffic, codec fuzzing.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "core/manager.hpp"
#include "runtime/codec.hpp"
#include "runtime/engine.hpp"
#include "runtime/queue.hpp"
#include "sketch/exact_counter.hpp"
#include "workload/synthetic.hpp"

namespace lar {
namespace {

runtime::OperatorFactory chain_factory() {
  return [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
    return std::make_unique<runtime::CountingOperator>(op - 1);
  };
}

// --- randomized end-to-end sweep -------------------------------------------------

struct SweepParam {
  std::uint32_t stages;
  std::uint32_t parallelism;
  double locality;
};

class EndToEndSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EndToEndSweep, CountsExactThroughTwoReconfigurations) {
  const auto [stages, parallelism, locality] = GetParam();
  const Topology topo = make_chain_topology(stages, parallelism);
  const Placement place = Placement::round_robin(topo, parallelism);
  runtime::Engine engine(topo, place, chain_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .seed = stages * 31 + parallelism});
  engine.start();
  core::Manager manager(topo, place, {});
  workload::SyntheticGenerator gen(
      {.num_values = 16 * parallelism,
       .locality = locality,
       .padding = 8,
       .seed = stages * 1000 + parallelism,
       .num_fields = stages});
  std::vector<sketch::ExactCounter<Key>> truth(stages);

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4000; ++i) {
      Tuple t = gen.next();
      for (std::uint32_t f = 0; f < stages; ++f) truth[f].add(t.fields[f]);
      engine.inject(std::move(t));
    }
    engine.flush();
    if (round < 2) engine.reconfigure(manager);
  }

  for (OperatorId op = 1; op <= stages; ++op) {
    for (const auto& e : truth[op - 1].entries()) {
      std::uint64_t sum = 0;
      int holders = 0;
      for (InstanceIndex i = 0; i < parallelism; ++i) {
        const auto c = static_cast<runtime::CountingOperator&>(
                           engine.operator_at(op, i))
                           .count(e.key);
        sum += c;
        holders += (c > 0);
      }
      ASSERT_EQ(sum, e.count) << "op " << op << " key " << e.key;
      ASSERT_EQ(holders, 1);
    }
  }
  engine.shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEndSweep,
    ::testing::Values(SweepParam{1, 1, 0.5}, SweepParam{1, 4, 0.9},
                      SweepParam{2, 2, 0.0}, SweepParam{2, 5, 0.7},
                      SweepParam{3, 2, 1.0}, SweepParam{3, 3, 0.6},
                      SweepParam{4, 2, 0.8}, SweepParam{4, 4, 0.5}));

// --- protocol torture --------------------------------------------------------------

TEST(Torture, FiveLiveReconfigurationsUnderContinuousStream) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  runtime::Engine engine(topo, place, chain_factory(),
                         {.queue_capacity = 256,  // tight: force back pressure
                          .fields_mode = FieldsRouting::kTable});
  engine.start();
  core::Manager manager(topo, place, {});

  sketch::ExactCounter<Key> truth0;
  sketch::ExactCounter<Key> truth1;
  std::atomic<bool> stop{false};
  std::thread feeder([&] {
    workload::SyntheticGenerator gen(
        {.num_values = 200, .locality = 0.85, .padding = 64, .seed = 77});
    while (!stop.load(std::memory_order_relaxed)) {
      Tuple t = gen.next();
      truth0.add(t.fields[0]);
      truth1.add(t.fields[1]);
      engine.inject(std::move(t));
    }
  });

  // Reconfigure repeatedly while the stream hammers the queues.  The drift
  // between windows comes purely from sampling noise, so later plans still
  // move a few keys each time.
  for (int round = 0; round < 5; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    engine.reconfigure(manager);
  }
  stop = true;
  feeder.join();
  engine.flush();

  const auto metrics = engine.metrics();
  EXPECT_GT(metrics.states_migrated, 0u);
  // Exactness despite everything.
  std::uint64_t sum0 = 0;
  for (const auto& e : truth0.entries()) {
    for (InstanceIndex i = 0; i < n; ++i) {
      sum0 += static_cast<runtime::CountingOperator&>(engine.operator_at(1, i))
                  .count(e.key);
    }
  }
  EXPECT_EQ(sum0, truth0.total());
  std::uint64_t sum1 = 0;
  for (const auto& e : truth1.entries()) {
    for (InstanceIndex i = 0; i < n; ++i) {
      sum1 += static_cast<runtime::CountingOperator&>(engine.operator_at(2, i))
                  .count(e.key);
    }
  }
  EXPECT_EQ(sum1, truth1.total());
  engine.shutdown();
}

// --- channel stress -----------------------------------------------------------------

TEST(ChannelStress, ManyProducersOneConsumerLosesNothing) {
  runtime::Channel<std::uint64_t> ch(64);
  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 5'000;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.push(static_cast<std::uint64_t>(p) * kPerProducer + i));
      }
    });
  }
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
  std::vector<std::uint64_t> last_seen(kProducers, 0);
  bool fifo_per_producer = true;
  while (count < kProducers * kPerProducer) {
    const auto v = ch.pop();
    ASSERT_TRUE(v.has_value());
    const auto producer = *v / kPerProducer;
    const auto seq = *v % kPerProducer + 1;
    fifo_per_producer &= (seq > last_seen[producer] ||
                          (seq == 1 && last_seen[producer] == 0));
    last_seen[producer] = seq;
    sum += *v;
    ++count;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(fifo_per_producer);
  const std::uint64_t total = kProducers * kPerProducer;
  EXPECT_EQ(sum, total * (total - 1) / 2);
}

TEST(ChannelStress, UnboundedControlInterleavesWithBoundedData) {
  runtime::Channel<int> ch(4);
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) ch.push(i);
    ch.push_unbounded(-1);  // sentinel
  });
  int data_seen = 0;
  while (true) {
    const auto v = ch.pop();
    ASSERT_TRUE(v.has_value());
    if (*v == -1) break;
    EXPECT_EQ(*v, data_seen++);
  }
  producer.join();
  EXPECT_EQ(data_seen, 1000);
}

// --- codec fuzz -----------------------------------------------------------------------

TEST(CodecFuzz, RandomTuplesRoundTrip) {
  Rng rng(123);
  for (int iter = 0; iter < 2000; ++iter) {
    Tuple t;
    const std::size_t nfields = rng.below(9);
    for (std::size_t f = 0; f < nfields; ++f) t.fields.push_back(rng.next());
    t.padding = static_cast<std::uint32_t>(rng.below(30'000));
    const auto wire = runtime::encode_tuple(t);
    ASSERT_EQ(wire.size(), t.serialized_size());
    const Tuple back = runtime::decode_tuple(wire);
    ASSERT_EQ(back.fields, t.fields);
    ASSERT_EQ(back.padding, t.padding);
  }
}

}  // namespace
}  // namespace lar
