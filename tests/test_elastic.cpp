// Tests for lar::elastic: the autoscaling controller's hysteresis state
// machine, elastic placement/routing primitives (active prefixes, fallback
// domains, plan_for), the advisor deployment gate, online scale-out/in in
// the threaded runtime (exactly-once across resizes, including under
// injected migration delays), and byte-stable elastic timelines in the
// simulator.
//
// The exactly-once harness mirrors test_chaos.cpp: ground-truth per-key
// counts recorded at inject time must equal the summed per-instance counts
// after the stream drains, with every key held by exactly one instance —
// growing or shrinking the fleet may not lose or duplicate a tuple's effect.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "core/manager.hpp"
#include "elastic/controller.hpp"
#include "obs/export.hpp"
#include "runtime/engine.hpp"
#include "sim/simulator.hpp"
#include "sketch/exact_counter.hpp"
#include "workload/synthetic.hpp"

namespace lar {
namespace {

using elastic::Controller;
using elastic::ControllerOptions;
using elastic::Reason;
using elastic::ScaleDecision;
using elastic::Signals;

Signals util(double u) {
  Signals s;
  s.utilization = u;
  return s;
}

ControllerOptions bounded(std::uint32_t min_n, std::uint32_t max_n) {
  ControllerOptions o;
  o.min_servers = min_n;
  o.max_servers = max_n;
  o.confirm_epochs = 2;
  o.cooldown_epochs = 2;
  return o;
}

// --- Controller hysteresis ---------------------------------------------------

TEST(Controller, ConfirmsBeforeActingThenCoolsDown) {
  Controller c(bounded(2, 16));
  // First breach only starts the streak.
  ScaleDecision d = c.evaluate(util(1.2), 4);
  EXPECT_EQ(d.reason, Reason::kConfirming);
  EXPECT_FALSE(d.changed(4));
  // Second consecutive breach confirms: double (step = 0).
  d = c.evaluate(util(1.2), 4);
  EXPECT_EQ(d.reason, Reason::kOverload);
  EXPECT_EQ(d.target_servers, 8u);
  // Cooldown: even a hard breach is held for cooldown_epochs evaluations.
  d = c.evaluate(util(2.0), 8);
  EXPECT_EQ(d.reason, Reason::kCooldown);
  EXPECT_FALSE(d.changed(8));
  d = c.evaluate(util(2.0), 8);
  EXPECT_EQ(d.reason, Reason::kCooldown);
  // Cooldown over: the breach must be re-confirmed from scratch.
  d = c.evaluate(util(2.0), 8);
  EXPECT_EQ(d.reason, Reason::kConfirming);
  d = c.evaluate(util(2.0), 8);
  EXPECT_EQ(d.reason, Reason::kOverload);
  EXPECT_EQ(d.target_servers, 16u);
}

TEST(Controller, DeadBandHoldsAndResetsStreaks) {
  Controller c(bounded(1, 8));
  EXPECT_EQ(c.evaluate(util(1.5), 4).reason, Reason::kConfirming);
  // One in-band evaluation wipes the streak: a later breach starts over.
  EXPECT_EQ(c.evaluate(util(0.6), 4).reason, Reason::kHold);
  EXPECT_EQ(c.evaluate(util(1.5), 4).reason, Reason::kConfirming);
  EXPECT_EQ(c.evaluate(util(1.5), 4).reason, Reason::kOverload);
}

TEST(Controller, ScaleInHalvesAndClampsAtMin) {
  Controller c(bounded(3, 16));
  EXPECT_EQ(c.evaluate(util(0.1), 8).reason, Reason::kConfirming);
  ScaleDecision d = c.evaluate(util(0.1), 8);
  EXPECT_EQ(d.reason, Reason::kUnderload);
  EXPECT_EQ(d.target_servers, 4u);  // halve on the way in
  // Cooldown, then confirm again; halving 4 would undershoot min = 3.
  (void)c.evaluate(util(0.1), 4);
  (void)c.evaluate(util(0.1), 4);
  (void)c.evaluate(util(0.1), 4);
  d = c.evaluate(util(0.1), 4);
  EXPECT_EQ(d.reason, Reason::kUnderload);
  EXPECT_EQ(d.target_servers, 3u);
  // At min, a confirmed underload has nowhere to go.
  (void)c.evaluate(util(0.1), 3);
  (void)c.evaluate(util(0.1), 3);
  (void)c.evaluate(util(0.1), 3);
  d = c.evaluate(util(0.1), 3);
  EXPECT_EQ(d.reason, Reason::kAtBound);
  EXPECT_FALSE(d.changed(3));
}

TEST(Controller, AtMaxReportsBound) {
  Controller c(bounded(1, 8));
  (void)c.evaluate(util(1.4), 8);
  const ScaleDecision d = c.evaluate(util(1.4), 8);
  EXPECT_EQ(d.reason, Reason::kAtBound);
  EXPECT_EQ(d.target_servers, 8u);
}

TEST(Controller, MigrationBacklogDefersAnyDecision) {
  Controller c(bounded(1, 8));
  (void)c.evaluate(util(1.4), 4);  // streak = 1
  Signals s = util(1.4);
  s.migration_backlog = 5.0;
  // In-flight state from the previous resize: hold, and drop the streak so
  // the breach must persist past the backlog to act.
  EXPECT_EQ(c.evaluate(s, 4).reason, Reason::kCooldown);
  EXPECT_EQ(c.evaluate(util(1.4), 4).reason, Reason::kConfirming);
}

TEST(Controller, FixedStepAddsAndRemovesStep) {
  ControllerOptions o = bounded(2, 10);
  o.step = 3;
  Controller c(o);
  (void)c.evaluate(util(1.4), 4);
  EXPECT_EQ(c.evaluate(util(1.4), 4).target_servers, 7u);
  (void)c.evaluate(util(0.1), 7);  // cooldown
  (void)c.evaluate(util(0.1), 7);  // cooldown
  (void)c.evaluate(util(0.1), 7);
  EXPECT_EQ(c.evaluate(util(0.1), 7).target_servers, 4u);
}

TEST(Controller, SameSignalSequenceSameDecisions) {
  const ControllerOptions o = bounded(2, 32);
  auto run = [&o]() {
    Controller c(o);
    Rng rng(97);
    std::vector<std::pair<std::uint32_t, Reason>> out;
    std::uint32_t servers = 4;
    for (int i = 0; i < 200; ++i) {
      const double u = static_cast<double>(rng.next() % 1000) / 500.0;
      const ScaleDecision d = c.evaluate(util(u), servers);
      if (d.changed(servers)) servers = d.target_servers;
      out.emplace_back(servers, d.reason);
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

// --- Signals / decision observability ----------------------------------------

TEST(ControllerObs, SignalsFromRegistryReadsCanonicalFamilies) {
  obs::Registry registry;
  registry.gauge("lar_window_throughput_tps", {}).set(2000.0);
  registry.gauge("lar_edge_locality_ratio", {{"edge", "S->A"}}).set(0.4);
  registry.gauge("lar_edge_locality_ratio", {{"edge", "A->B"}}).set(0.8);
  registry.gauge("lar_op_load_balance_ratio", {{"op", "A"}}).set(1.5);
  registry.gauge("lar_op_load_balance_ratio", {{"op", "B"}}).set(1.1);
  const Signals s = elastic::signals_from_registry(registry, 1000.0);
  EXPECT_DOUBLE_EQ(s.utilization, 0.5);
  EXPECT_DOUBLE_EQ(s.locality, 0.6);   // mean over edges
  EXPECT_DOUBLE_EQ(s.balance, 1.5);    // worst operator
  EXPECT_DOUBLE_EQ(s.queue_hwm, 0.0);  // family absent -> default
}

TEST(ControllerObs, PublishDecisionWritesGaugeAndCounter) {
  obs::Registry registry;
  elastic::publish_decision(registry, {.target_servers = 8,
                                       .reason = Reason::kOverload});
  elastic::publish_decision(registry, {.target_servers = 8,
                                       .reason = Reason::kCooldown});
  EXPECT_DOUBLE_EQ(registry.gauge("lar_elastic_target_servers", {}).value(),
                   8.0);
  EXPECT_EQ(registry
                .counter("lar_elastic_decisions_total",
                         {{"reason", "overload"}})
                .value(),
            1u);
  EXPECT_EQ(registry
                .counter("lar_elastic_decisions_total",
                         {{"reason", "cooldown"}})
                .value(),
            1u);
}

TEST(ControllerObs, ProbeHealthFeedsControllerVetoAndPressure) {
  // obs v2 end to end: a probe evaluates the timeline into lar_health_*
  // gauges, signals_from_registry picks them up, and the controller treats
  // veto as a pin and pressure as an overload observation.
  obs::Registry registry;
  obs::Timeline timeline;
  obs::Probe probe;
  registry.gauge("lar_window_throughput_tps", {}).set(2000.0);
  registry.gauge("lar_op_load_balance_ratio", {{"op", "B"}}).set(1.1);

  // Tick 1: healthy, plus migration activity -> veto.
  registry.counter("lar_key_moves_total").inc(25);
  timeline.tick(registry, 1.0);
  (void)probe.evaluate(timeline, registry);
  Signals s = elastic::signals_from_registry(registry, 1000.0);
  EXPECT_DOUBLE_EQ(s.health_veto, 1.0);
  Controller c(bounded(1, 8));
  // Utilization 0.5 is in the dead band, but the veto alone must pin.
  EXPECT_EQ(c.evaluate(s, 4).reason, Reason::kCooldown);

  // Tick 2: migration settled, but the fleet is now badly imbalanced ->
  // pressure.  Confirmed pressure scales out even at in-band utilization.
  registry.gauge("lar_op_load_balance_ratio", {{"op", "B"}}).set(3.0);
  timeline.tick(registry, 2.0);
  (void)probe.evaluate(timeline, registry);
  s = elastic::signals_from_registry(registry, 1000.0);
  EXPECT_DOUBLE_EQ(s.health_veto, 0.0);
  EXPECT_DOUBLE_EQ(s.health_pressure, 1.0);
  EXPECT_EQ(c.evaluate(s, 4).reason, Reason::kConfirming);
  ScaleDecision d = c.evaluate(s, 4);
  EXPECT_EQ(d.reason, Reason::kOverload);
  EXPECT_EQ(d.target_servers, 8u);

  // Pressure also blocks scale-in: utilization far below the scale-in
  // threshold still routes through the overload branch.
  Controller c2(bounded(1, 8));
  Signals low = s;
  low.utilization = 0.1;
  EXPECT_EQ(c2.evaluate(low, 4).reason, Reason::kConfirming);
  low.health_pressure = 0.0;
  EXPECT_EQ(c2.evaluate(low, 4).reason, Reason::kConfirming);  // underload now
}

// --- Placement: active prefixes (satellite) ----------------------------------

TEST(PlacementElastic, WithServersIsCanonicalRoundRobin) {
  const Topology topo = make_two_stage_topology(6);
  const Placement place = Placement::round_robin(topo, 6);
  const Placement shrunk = place.with_servers(4);
  EXPECT_EQ(shrunk.num_servers(), 4u);
  EXPECT_EQ(shrunk.num_racks(), 1u);
  for (OperatorId op = 0; op < topo.num_operators(); ++op) {
    ASSERT_EQ(shrunk.parallelism_of(op), place.parallelism_of(op));
    for (InstanceIndex i = 0; i < shrunk.parallelism_of(op); ++i) {
      EXPECT_EQ(shrunk.server_of(op, i), i % 4);
    }
  }
}

TEST(PlacementElastic, ActiveInstancesAreTheServerPrefix) {
  const Topology topo = make_two_stage_topology(8);
  const Placement place = Placement::round_robin(topo, 8);
  EXPECT_EQ(place.active_instances(1, 3),
            (std::vector<InstanceIndex>{0, 1, 2}));
  EXPECT_EQ(place.active_instances(1, 8).size(), 8u);
  // A placement that piles instances onto low servers keeps them all active
  // even under a shrunken prefix.
  const Placement packed = Placement::explicit_placement(
      {{0, 0}, {0, 1, 2}, {1, 0, 2}}, 3);
  EXPECT_EQ(packed.active_instances(0, 1),
            (std::vector<InstanceIndex>{0, 1}));
  EXPECT_EQ(packed.active_instances(1, 2),
            (std::vector<InstanceIndex>{0, 1}));
  EXPECT_EQ(packed.active_instances(2, 2),
            (std::vector<InstanceIndex>{0, 1}));
}

TEST(PlacementElasticDeathTest, ExplicitPlacementValidatesItsInput) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(Placement::explicit_placement({{0, 3}}, 3),
               "LAR_CHECK failed");  // server id out of range
  EXPECT_DEATH(Placement::explicit_placement({{0}, {}}, 2),
               "zero instances");
}

// --- RoutingTable fallback domain (epoch-consistent hash fallback) -----------

TEST(RoutingFallbackDomain, UnknownKeysHashOverTheDomain) {
  RoutingTable table;
  table.assign(7, 5);
  table.set_fallback({0, 2, 4});
  EXPECT_EQ(table.route(7, 8), 5u);  // explicit entry wins
  for (Key k = 100; k < 200; ++k) {
    const InstanceIndex dst = table.route(k, 8);
    EXPECT_EQ(dst, table.fallback()[mix64(k) % 3]);
    EXPECT_TRUE(dst == 0 || dst == 2 || dst == 4);
  }
  // Clearing the domain restores full-fanout hash fallback.
  table.set_fallback({});
  EXPECT_EQ(table.route(100, 8), hash_instance(100, 8));
}

// --- Manager::plan_for (elastic re-planning) ---------------------------------

TEST(PlanFor, EmptyStatsStillPinTheFallbackDomain) {
  const Topology topo = make_two_stage_topology(8);
  const Placement place = Placement::round_robin(topo, 8);
  core::Manager manager(topo, place, {});
  const auto plan = manager.plan_for({}, 4);
  EXPECT_EQ(plan.active_servers, 4u);
  // No statistics: no explicit entries, but every fields-routed operator
  // still gets a table whose fallback domain is the new active set — that
  // is what makes the modulus switch atomic with the wave.
  for (const OperatorId op : {OperatorId{1}, OperatorId{2}}) {
    ASSERT_TRUE(plan.tables.contains(op)) << "op " << op;
    EXPECT_EQ(plan.tables.at(op)->size(), 0u);
    EXPECT_EQ(plan.tables.at(op)->fallback(), place.active_instances(op, 4));
  }
}

TEST(PlanFor, AssignsOnlyActiveInstances) {
  const Topology topo = make_two_stage_topology(8);
  const Placement place = Placement::round_robin(topo, 8);
  core::Manager manager(topo, place, {});
  ASSERT_EQ(manager.optimizable_hops().size(), 1u);  // A -> B
  core::HopStats hop;
  hop.in_op = manager.optimizable_hops()[0].from;
  hop.out_op = manager.optimizable_hops()[0].to;
  Rng rng(7);
  for (Key k = 0; k < 64; ++k) {
    hop.pairs.push_back({k, (k * 3) % 64, 10 + rng.next() % 50});
  }
  const auto plan = manager.plan_for({hop}, 3);
  EXPECT_EQ(plan.active_servers, 3u);
  for (const auto& [op, table] : plan.tables) {
    EXPECT_EQ(table->fallback(), place.active_instances(op, 3));
    for (const auto& [key, instance] : table->sorted_entries()) {
      EXPECT_LT(place.server_of(op, instance), 3u)
          << "op " << op << " key " << key << " assigned to a dormant server";
    }
  }
}

// --- engine fixtures (mirrors test_chaos.cpp) --------------------------------

runtime::OperatorFactory counting_factory() {
  return [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
    return std::make_unique<runtime::CountingOperator>(op == 1 ? 0 : 1);
  };
}

runtime::CountingOperator& counter_at(runtime::Engine& engine, OperatorId op,
                                      InstanceIndex i) {
  return static_cast<runtime::CountingOperator&>(engine.operator_at(op, i));
}

struct GroundTruth {
  sketch::ExactCounter<Key> field0;
  sketch::ExactCounter<Key> field1;
};

void pump(runtime::Engine& engine, workload::TupleGenerator& gen, int n,
          GroundTruth* truth = nullptr) {
  for (int i = 0; i < n; ++i) {
    Tuple t = gen.next();
    if (truth != nullptr) {
      truth->field0.add(t.fields[0]);
      truth->field1.add(t.fields[1]);
    }
    engine.inject(std::move(t));
  }
}

/// Exactly-once: per key, summed counts across instances equal ground truth
/// and exactly one instance holds the key.  Instances at or above
/// `live_below` (when set) must hold nothing — retirement really emptied
/// them, and restricted routing never touched them.
void expect_counts_match(runtime::Engine& engine, OperatorId op,
                         std::uint32_t par,
                         const sketch::ExactCounter<Key>& truth,
                         std::uint32_t live_below = 0) {
  for (const auto& entry : truth.entries()) {
    std::uint64_t sum = 0;
    int holders = 0;
    for (InstanceIndex i = 0; i < par; ++i) {
      const std::uint64_t c = counter_at(engine, op, i).count(entry.key);
      if (live_below != 0 && i >= live_below) {
        ASSERT_EQ(c, 0u) << "op " << op << " key " << entry.key
                         << " stranded on dormant instance " << i;
      }
      sum += c;
      holders += (c > 0);
    }
    ASSERT_EQ(sum, entry.count) << "op " << op << " key " << entry.key;
    ASSERT_EQ(holders, 1) << "op " << op << " key " << entry.key
                          << " split across instances";
  }
}

/// Feeds tuples from a dedicated thread until stopped, recording ground
/// truth, so scale waves overlap a live stream.
class Feeder {
 public:
  Feeder(runtime::Engine& engine, GroundTruth& truth,
         workload::TupleGenerator& gen)
      : thread_([this, &engine, &truth, &gen] {
          while (!stop_.load()) {
            Tuple t = gen.next();
            truth.field0.add(t.fields[0]);
            truth.field1.add(t.fields[1]);
            engine.inject(std::move(t));
          }
        }) {}

  void stop() {
    stop_ = true;
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// --- engine: restricted start + scale-out ------------------------------------

TEST(EngineElastic, RestrictedStartKeepsTheStreamOnThePrefix) {
  const std::uint32_t n = 8;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .active_servers = 4});
  engine.start();
  EXPECT_EQ(engine.active_servers(), 4u);
  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 90, .locality = 0.8, .padding = 0, .seed = 51});
  pump(engine, gen, 10'000, &truth);
  engine.flush();
  // Dormant instances (round-robin: instance i is on server i) saw nothing.
  expect_counts_match(engine, 1, n, truth.field0, /*live_below=*/4);
  expect_counts_match(engine, 2, n, truth.field1, /*live_below=*/4);
  engine.shutdown();
}

TEST(EngineElastic, ScaleOutIsExactlyOnceAgainstALiveStream) {
  const std::uint32_t n = 8;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .active_servers = 4});
  engine.start();
  core::Manager mgr(topo, place, {});

  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 90, .locality = 0.8, .padding = 0, .seed = 52});
  Feeder feeder(engine, truth, gen);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.reconfigure(mgr);  // locality round on the small fleet first
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.add_servers(mgr, 8);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  feeder.stop();
  engine.flush();

  EXPECT_EQ(engine.active_servers(), 8u);
  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  const auto m = engine.metrics();
  EXPECT_EQ(m.active_servers, 8u);
  EXPECT_EQ(m.scale_out_events, 1u);
  // The grown fleet is actually used: post-wave traffic reached the joiners.
  std::uint64_t joined_processed = 0;
  for (const OperatorId op : {OperatorId{1}, OperatorId{2}}) {
    for (InstanceIndex i = 4; i < n; ++i) {
      joined_processed += m.instance_processed[op][i];
    }
  }
  EXPECT_GT(joined_processed, 0u);
  engine.shutdown();
}

TEST(EngineElastic, ScaleOutBeforeAnyTrafficRidesTheFallbackDomain) {
  // No statistics have ever been gathered: the wave deploys empty tables
  // whose only payload is the new fallback domain.  Everything after is
  // plain hash routing over eight instances — but epoch-consistent, so the
  // stream that starts mid-wave still lands exactly once.
  const std::uint32_t n = 8;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .active_servers = 4});
  engine.start();
  core::Manager mgr(topo, place, {});
  engine.add_servers(mgr, 8);
  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 200, .locality = 0.8, .padding = 0, .seed = 53});
  pump(engine, gen, 10'000, &truth);
  engine.flush();
  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  engine.shutdown();
}

// --- engine: retirement ------------------------------------------------------

TEST(EngineElastic, RetireUnderDelayedMigrationLosesNothing) {
  // Migrate-then-stop under chaos: every MIGRATE (planned move, residual
  // drain) is redelivered three times while two retiring servers drain a
  // live stream.  Retired instances must end empty, survivors must hold
  // every count exactly once.
  const std::uint32_t n = 8;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  chaos::FaultPlan plan(909);
  plan.set(chaos::FaultSite::kMigrateDelay, {.rate = 1.0, .magnitude = 3});
  chaos::Injector inj(plan);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .injector = &inj});
  engine.start();
  core::Manager mgr(topo, place, {});

  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 90, .locality = 0.8, .padding = 0, .seed = 54});
  Feeder feeder(engine, truth, gen);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.reconfigure(mgr);  // spread state over the full fleet first
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.retire_servers(mgr, 6);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  engine.retire_servers(mgr, 4);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  feeder.stop();
  engine.flush();

  EXPECT_EQ(engine.active_servers(), 4u);
  expect_counts_match(engine, 1, n, truth.field0, /*live_below=*/4);
  expect_counts_match(engine, 2, n, truth.field1, /*live_below=*/4);
  for (const OperatorId op : {OperatorId{1}, OperatorId{2}}) {
    for (InstanceIndex i = 4; i < n; ++i) {
      EXPECT_TRUE(counter_at(engine, op, i).owned_keys().empty())
          << "op " << op << " retired instance " << i << " kept state";
    }
  }
  const auto m = engine.metrics();
  EXPECT_EQ(m.scale_in_events, 2u);
  EXPECT_GT(inj.fired(chaos::FaultSite::kMigrateDelay), 0u);
  EXPECT_EQ(m.migrate_redeliveries,
            inj.fired(chaos::FaultSite::kMigrateDelay));
  engine.shutdown();
}

TEST(EngineElastic, RetireRoutesUnknownKeysWithinTheNewPrefix) {
  // Epoch-consistent fallback on the way down: after retiring to two
  // servers, a stream over a 10x larger key universe — keys no table has
  // ever seen — must still land only on the surviving prefix.
  const std::uint32_t n = 8;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .active_servers = 4});
  engine.start();
  core::Manager mgr(topo, place, {});
  GroundTruth truth;
  workload::SyntheticGenerator warm(
      {.num_values = 30, .locality = 0.9, .padding = 0, .seed = 55});
  pump(engine, warm, 8'000, &truth);
  engine.flush();
  engine.reconfigure(mgr);
  engine.retire_servers(mgr, 2);
  workload::SyntheticGenerator wide(
      {.num_values = 300, .locality = 0.8, .padding = 0, .seed = 56});
  pump(engine, wide, 8'000, &truth);
  engine.flush();
  expect_counts_match(engine, 1, n, truth.field0, /*live_below=*/2);
  expect_counts_match(engine, 2, n, truth.field1, /*live_below=*/2);
  engine.shutdown();
}

// --- engine: advisor deployment gate (satellite) -----------------------------

TEST(EngineAdvisor, UnprofitablePlansAreComputedButNotDeployed) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable});
  engine.start();
  core::ManagerOptions mopts;
  mopts.advise_deploys = true;
  mopts.advisor.min_net_benefit = 1e18;  // nothing can ever clear this bar
  core::Manager mgr(topo, place, mopts);

  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 60, .locality = 0.9, .padding = 0, .seed = 57});
  pump(engine, gen, 10'000, &truth);
  engine.flush();
  const auto p1 = engine.reconfigure(mgr);
  EXPECT_GT(p1.total_moves(), 0u);  // a real plan was computed...
  engine.flush();
  EXPECT_EQ(engine.metrics().states_migrated, 0u);  // ...but never pushed
  // Not marked deployed either: the next round proposes the same moves
  // instead of diffing against a table that never went live.
  pump(engine, gen, 10'000, &truth);
  engine.flush();
  const auto p2 = engine.reconfigure(mgr);
  EXPECT_GT(p2.total_moves(), 0u);
  EXPECT_EQ(engine.metrics().states_migrated, 0u);
  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  engine.shutdown();
}

TEST(SimAdvisor, RejectedPlanLeavesRoutingAndStatsUntouched) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::ManagerOptions mopts;
  mopts.advise_deploys = true;
  mopts.advisor.min_net_benefit = 1e18;
  core::Manager mgr(topo, place, mopts);
  workload::SyntheticGenerator gen(
      {.num_values = 60, .locality = 0.9, .padding = 0, .seed = 58});
  const double before =
      simulator.run_window(gen, 5000).edge_locality.back();
  const auto plan = simulator.reconfigure(mgr);
  EXPECT_GT(plan.total_moves(), 0u);
  // Routing unchanged: the next window's locality matches the pre-"deploy"
  // one (same generator distribution, same tables).
  const double after = simulator.run_window(gen, 5000).edge_locality.back();
  EXPECT_NEAR(before, after, 0.05);
}

// --- simulator: elastic timelines --------------------------------------------

TEST(SimElastic, ResizeMovesLoadOnAndOffTheJoinedServers) {
  const std::uint32_t n = 8;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  cfg.active_servers = 4;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager mgr(topo, place, {});
  workload::SyntheticGenerator gen(
      {.num_values = 200, .locality = 0.8, .padding = 16, .seed = 59});

  auto loads_above = [&](std::uint32_t live) {
    std::uint64_t sum = 0;
    const auto& s = simulator.model().stats();
    for (OperatorId op = 0; op < topo.num_operators(); ++op) {
      for (InstanceIndex i = live; i < n; ++i) {
        sum += s.instance_load[op][i];
      }
    }
    return sum;
  };
  auto conserved = [&](std::uint64_t tuples) {
    const auto& s = simulator.model().stats();
    for (OperatorId op = 1; op < topo.num_operators(); ++op) {
      std::uint64_t total = 0;
      for (const std::uint64_t l : s.instance_load[op]) total += l;
      if (total != tuples) return false;
    }
    return true;
  };

  simulator.run_window(gen, 5000);
  EXPECT_EQ(loads_above(4), 0u);  // restricted start: prefix only
  EXPECT_TRUE(conserved(5000));

  simulator.resize(mgr, 8);
  simulator.run_window(gen, 5000);
  EXPECT_GT(loads_above(4), 0u);  // joiners take traffic immediately
  EXPECT_TRUE(conserved(5000));

  simulator.resize(mgr, 4);
  simulator.run_window(gen, 5000);
  EXPECT_EQ(loads_above(4), 0u);  // retirees fully vacated
  EXPECT_TRUE(conserved(5000));
  EXPECT_DOUBLE_EQ(
      simulator.registry().gauge("lar_elastic_active_servers", {}).value(),
      4.0);
}

TEST(SimElastic, ControllerDrivenTimelineIsByteIdentical) {
  const std::uint32_t n = 8;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  auto run = [&]() -> std::string {
    sim::SimConfig cfg;
    cfg.source_mode = SourceMode::kRoundRobin;
    cfg.active_servers = 4;
    sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
    core::Manager mgr(topo, place, {});
    mgr.set_metrics_registry(&simulator.registry());
    elastic::Controller controller({.min_servers = 4,
                                    .max_servers = 8,
                                    .confirm_epochs = 2,
                                    .cooldown_epochs = 2});
    workload::SyntheticGenerator gen(
        {.num_values = 200, .locality = 0.8, .padding = 16, .seed = 60});
    std::uint32_t servers = 4;
    for (int window = 0; window < 12; ++window) {
      const auto report = simulator.run_window(gen, 4000);
      // Utilization schedule: overload the half fleet, then starve the
      // full one — one scale-out and one scale-in land on the way.
      const double offered =
          window < 6 ? 1.2 * report.throughput : 0.2 * report.throughput;
      Signals signals =
          elastic::signals_from_registry(simulator.registry(), offered);
      signals.utilization = offered / report.throughput;  // exact schedule
      const ScaleDecision decision = controller.evaluate(signals, servers);
      elastic::publish_decision(simulator.registry(), decision);
      if (decision.changed(servers)) {
        simulator.resize(mgr, decision.target_servers);
        servers = decision.target_servers;
      }
    }
    EXPECT_EQ(servers, 4u);  // out at ~window 2, back in at ~window 8
    return obs::report_json(simulator.registry(), &simulator.trace());
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("lar_elastic_active_servers"), std::string::npos);
  EXPECT_NE(first.find("lar_elastic_decisions_total"), std::string::npos);
  EXPECT_NE(first.find("\"scale_out\""), std::string::npos);
  EXPECT_NE(first.find("\"scale_in\""), std::string::npos);
}

}  // namespace
}  // namespace lar
