// Tests for lar::chaos: deterministic fault plans, the injector's obs
// integration, recovery in the threaded runtime (link dedup, delay stashes,
// migration idempotence and redelivery, buffer-cap spill, partial gather)
// and byte-stable chaos runs in the simulator.
//
// The exactly-once harness mirrors test_runtime.cpp: ground-truth per-key
// counts recorded at inject time must equal the summed per-instance counts
// after the stream drains, with every key held by exactly one instance — no
// injected fault may lose or duplicate a tuple's effect.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "core/manager.hpp"
#include "obs/export.hpp"
#include "runtime/engine.hpp"
#include "runtime/queue.hpp"
#include "sim/simulator.hpp"
#include "sketch/exact_counter.hpp"
#include "workload/synthetic.hpp"

namespace lar {
namespace {

using chaos::FaultPlan;
using chaos::FaultSite;
using chaos::FaultSpec;

// --- FaultPlan ---------------------------------------------------------------

TEST(FaultPlan, DecisionIsPureAndSeedDeterministic) {
  const FaultPlan a = FaultPlan::uniform(42, 0.3);
  const FaultPlan b = FaultPlan::uniform(42, 0.3);
  for (std::uint64_t entity = 0; entity < 8; ++entity) {
    for (std::uint64_t seq = 0; seq < 200; ++seq) {
      EXPECT_EQ(a.should_inject(FaultSite::kChannelDelay, entity, seq),
                b.should_inject(FaultSite::kChannelDelay, entity, seq));
    }
  }
}

TEST(FaultPlan, RateBoundaries) {
  FaultPlan plan(7);
  plan.set(FaultSite::kStatsLoss, {.rate = 0.0});
  plan.set(FaultSite::kStatsDelay, {.rate = 1.0});
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_FALSE(plan.should_inject(FaultSite::kStatsLoss, 1, seq));
    EXPECT_TRUE(plan.should_inject(FaultSite::kStatsDelay, 1, seq));
  }
  EXPECT_TRUE(plan.armed());
  EXPECT_FALSE(FaultPlan(7).armed());
}

TEST(FaultPlan, SitesDrawIndependently) {
  // Same (entity, seq) stream, different sites: the per-site salts must
  // decorrelate the decisions.
  const FaultPlan plan = FaultPlan::uniform(13, 0.5);
  int disagreements = 0;
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    disagreements +=
        plan.should_inject(FaultSite::kChannelDelay, 0, seq) !=
        plan.should_inject(FaultSite::kChannelDuplicate, 0, seq);
  }
  EXPECT_GT(disagreements, 100);
  EXPECT_LT(disagreements, 400);
}

TEST(FaultPlan, ObservedRateTracksConfiguredRate) {
  const FaultPlan plan = FaultPlan::uniform(99, 0.1);
  int fired = 0;
  for (std::uint64_t seq = 0; seq < 10'000; ++seq) {
    fired += plan.should_inject(FaultSite::kWorkerStall, 3, seq);
  }
  EXPECT_GT(fired, 700);
  EXPECT_LT(fired, 1300);
}

TEST(FaultPlan, MagnitudeIsPerSite) {
  FaultPlan plan(1);
  plan.set(FaultSite::kMigrateDelay, {.rate = 0.5, .magnitude = 7});
  EXPECT_EQ(plan.magnitude(FaultSite::kMigrateDelay), 7u);
  EXPECT_EQ(plan.magnitude(FaultSite::kWorkerStall), 1u);
}

// --- Injector ----------------------------------------------------------------

TEST(Injector, CountsFiresAndRecordsObservability) {
  obs::Registry registry;
  obs::TraceRecorder trace;
  FaultPlan plan(5);
  plan.set(FaultSite::kStatsLoss, {.rate = 1.0});
  chaos::Injector inj(plan, &registry, &trace);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(inj.fire(FaultSite::kStatsLoss, /*entity=*/9, /*version=*/2));
  }
  EXPECT_FALSE(inj.fire(FaultSite::kStatsDelay, 9));  // rate 0
  EXPECT_EQ(inj.fired(FaultSite::kStatsLoss), 3u);
  EXPECT_EQ(inj.fired(FaultSite::kStatsDelay), 0u);
  EXPECT_EQ(registry
                .counter("lar_chaos_faults_total", {{"site", "stats_loss"}})
                .value(),
            3u);
  inj.recovery("partial_gather", "poi-9", /*count=*/2, /*bytes=*/0,
               /*version=*/2);
  EXPECT_EQ(registry
                .counter("lar_chaos_recovery_total",
                         {{"action", "partial_gather"}})
                .value(),
            2u);
  int faults = 0;
  int recoveries = 0;
  for (const obs::TraceEvent& ev : trace.events()) {
    faults += ev.phase == obs::Phase::kFault;
    recoveries += ev.phase == obs::Phase::kRecover;
  }
  EXPECT_EQ(faults, 3);
  EXPECT_EQ(recoveries, 1);
}

TEST(Injector, PerEntityStreamsAdvanceIndependently) {
  // Two entities interleaved in any order see the same per-entity decision
  // sequence as when queried alone — the property that makes single-threaded
  // callers byte-stable.
  FaultPlan plan = FaultPlan::uniform(23, 0.4);
  chaos::Injector interleaved(plan);
  std::vector<bool> a_inter;
  std::vector<bool> b_inter;
  for (int i = 0; i < 50; ++i) {
    a_inter.push_back(interleaved.fire(FaultSite::kChannelDelay, 1));
    b_inter.push_back(interleaved.fire(FaultSite::kChannelDelay, 2));
  }
  chaos::Injector solo(plan);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(solo.fire(FaultSite::kChannelDelay, 1), a_inter[i]);
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(solo.fire(FaultSite::kChannelDelay, 2), b_inter[i]);
  }
}

// --- Channel push validator (control-plane discipline) -----------------------

TEST(ChannelValidatorDeathTest, BoundedPushRejectsControlItems) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  runtime::Channel<int> ch(8);
  // Convention for this test: even = data, odd = control.
  ch.set_push_validator([](const int& v) { return v % 2 == 0; });
  EXPECT_TRUE(ch.push(2));
  EXPECT_TRUE(ch.try_push(4));
  EXPECT_TRUE(ch.push_unbounded(3));  // control may always go unbounded
  EXPECT_DEATH(ch.push(5), "LAR_CHECK failed");
  EXPECT_DEATH(ch.try_push(5), "LAR_CHECK failed");
}

// --- engine fixtures (mirrors test_runtime.cpp) ------------------------------

runtime::OperatorFactory counting_factory() {
  return [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
    return std::make_unique<runtime::CountingOperator>(op == 1 ? 0 : 1);
  };
}

runtime::CountingOperator& counter_at(runtime::Engine& engine, OperatorId op,
                                      InstanceIndex i) {
  return static_cast<runtime::CountingOperator&>(engine.operator_at(op, i));
}

struct GroundTruth {
  sketch::ExactCounter<Key> field0;
  sketch::ExactCounter<Key> field1;
};

void pump(runtime::Engine& engine, workload::TupleGenerator& gen, int n,
          GroundTruth* truth = nullptr) {
  for (int i = 0; i < n; ++i) {
    Tuple t = gen.next();
    if (truth != nullptr) {
      truth->field0.add(t.fields[0]);
      truth->field1.add(t.fields[1]);
    }
    engine.inject(std::move(t));
  }
}

/// Exactly-once: per key, summed counts across instances equal ground truth
/// and exactly one instance holds the key.
void expect_counts_match(runtime::Engine& engine, OperatorId op,
                         std::uint32_t par,
                         const sketch::ExactCounter<Key>& truth) {
  for (const auto& entry : truth.entries()) {
    std::uint64_t sum = 0;
    int holders = 0;
    for (InstanceIndex i = 0; i < par; ++i) {
      const std::uint64_t c = counter_at(engine, op, i).count(entry.key);
      sum += c;
      holders += (c > 0);
    }
    ASSERT_EQ(sum, entry.count) << "op " << op << " key " << entry.key;
    ASSERT_EQ(holders, 1) << "op " << op << " key " << entry.key
                          << " split across instances";
  }
}

/// Feeds tuples from a dedicated thread until stopped, recording ground
/// truth, so reconfigurations and their injected faults overlap a live
/// stream.  The generator is caller-owned (and only touched by the feeder
/// thread) so tests can steer the key distribution mid-stream.
class Feeder {
 public:
  Feeder(runtime::Engine& engine, GroundTruth& truth,
         workload::TupleGenerator& gen)
      : thread_([this, &engine, &truth, &gen] {
          while (!stop_.load()) {
            Tuple t = gen.next();
            truth.field0.add(t.fields[0]);
            truth.field1.add(t.fields[1]);
            engine.inject(std::move(t));
          }
        }) {}

  void stop() {
    stop_ = true;
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Generator whose second field is the first shifted by a live-settable
/// offset: flipping the shift between reconfigurations changes which key
/// pairs co-occur, so every recomputed plan is guaranteed to move keys —
/// the lever the spill test uses to keep migration traffic coming without
/// depending on scheduler timing.
class ShiftedGenerator final : public workload::TupleGenerator {
 public:
  ShiftedGenerator(std::uint32_t num_values, std::uint64_t seed,
                   const std::atomic<std::uint32_t>& shift)
      : n_(num_values), shift_(shift), rng_(seed) {}

  [[nodiscard]] Tuple next() override {
    const Key k = rng_.next() % n_;
    return Tuple{{k, (k + shift_.load()) % n_}, 0};
  }

 private:
  std::uint32_t n_;
  const std::atomic<std::uint32_t>& shift_;
  Rng rng_;
};

// --- engine: channel-level faults --------------------------------------------

TEST(EngineChaos, ExactlyOnceUnderChannelDuplicateDelayAndStall) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  FaultPlan plan(101);
  plan.set(FaultSite::kChannelDelay, {.rate = 0.02});
  plan.set(FaultSite::kChannelDuplicate, {.rate = 0.02});
  plan.set(FaultSite::kWorkerStall, {.rate = 0.01, .magnitude = 3});
  chaos::Injector inj(plan);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .injector = &inj});
  engine.start();
  core::Manager mgr(topo, place, {});

  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 90, .locality = 0.8, .padding = 0, .seed = 31});
  Feeder feeder(engine, truth, gen);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.reconfigure(mgr);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.reconfigure(mgr);
  feeder.stop();
  engine.flush();

  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  const auto m = engine.metrics();
  // Faults really fired, and every duplicated copy was dropped exactly once.
  EXPECT_GT(inj.fired(FaultSite::kChannelDuplicate), 0u);
  EXPECT_GT(inj.fired(FaultSite::kChannelDelay), 0u);
  EXPECT_EQ(m.data_dups_dropped, inj.fired(FaultSite::kChannelDuplicate));
  engine.shutdown();
}

// --- engine: migration faults ------------------------------------------------

TEST(EngineChaos, MigrationDelayAndDuplicateAreAbsorbed) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  FaultPlan plan(202);
  plan.set(FaultSite::kMigrateDelay, {.rate = 1.0, .magnitude = 4});
  plan.set(FaultSite::kMigrateDuplicate, {.rate = 0.5});
  obs::Registry registry;
  obs::TraceRecorder trace;
  chaos::Injector inj(plan, &registry, &trace);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .registry = &registry,
                          .trace = &trace,
                          .injector = &inj});
  engine.start();
  core::Manager mgr(topo, place, {});

  GroundTruth truth;
  workload::SyntheticGenerator gen(
      {.num_values = 90, .locality = 0.8, .padding = 0, .seed = 32});
  Feeder feeder(engine, truth, gen);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto plan1 = engine.reconfigure(mgr);
  EXPECT_GT(plan1.total_moves(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  engine.reconfigure(mgr);
  feeder.stop();
  engine.flush();

  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  const auto m = engine.metrics();
  // Every fired delay produced one bounded redelivery; every fired
  // duplicate produced exactly one dedup drop before import.
  EXPECT_GT(inj.fired(FaultSite::kMigrateDelay), 0u);
  EXPECT_EQ(m.migrate_redeliveries, inj.fired(FaultSite::kMigrateDelay));
  EXPECT_EQ(m.migrates_deduped, inj.fired(FaultSite::kMigrateDuplicate));
  // The obs integration saw both the faults and the recoveries.
  int faults = 0;
  int recoveries = 0;
  for (const obs::TraceEvent& ev : trace.events()) {
    faults += ev.phase == obs::Phase::kFault;
    recoveries += ev.phase == obs::Phase::kRecover;
  }
  EXPECT_GT(faults, 0);
  EXPECT_GT(recoveries, 0);
  engine.shutdown();
}

TEST(EngineChaos, BufferCapSpillsAndDrainsExactlyOnce) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  FaultPlan plan(303);
  // Every migration payload is redelivered many times, so tuples for moved
  // keys keep buffering while the state is in flight — far past the tiny
  // in-memory cap.
  plan.set(FaultSite::kMigrateDelay, {.rate = 1.0, .magnitude = 400});
  chaos::Injector inj(plan);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .injector = &inj,
                          .buffered_tuples_cap = 1});
  engine.start();
  core::Manager mgr(topo, place, {});

  // Flipping the alignment shift between rounds guarantees every
  // reconfiguration has fresh migrations to stretch out; retrying rounds
  // until a spill lands keeps the test deterministic in outcome even when
  // the scheduler starves the feeder during one particular window.
  std::atomic<std::uint32_t> shift{0};
  GroundTruth truth;
  ShiftedGenerator gen(/*num_values=*/60, /*seed=*/33, shift);
  Feeder feeder(engine, truth, gen);
  std::uint64_t moves = 0;
  for (int round = 0; round < 8; ++round) {
    shift.store(round % 2 == 0 ? 0 : 30);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    moves += engine.reconfigure(mgr).total_moves();
    if (engine.metrics().tuples_spilled > 0) break;
  }
  EXPECT_GT(moves, 0u);
  feeder.stop();
  engine.flush();

  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  const auto m = engine.metrics();
  EXPECT_GT(m.tuples_buffered, 0u);
  EXPECT_GT(m.tuples_spilled, 0u);  // cap 1: second buffered tuple spills
  EXPECT_GT(m.tuples_spilled_bytes, 0u);
  EXPECT_LE(m.tuples_spilled, m.tuples_buffered);
  engine.shutdown();
}

// --- routing-table fallback under delayed migration (satellite) --------------

TEST(RoutingFallback, UnknownKeysHashRoute) {
  RoutingTable table;
  table.assign(5, 2);
  EXPECT_EQ(table.route(5, 4), 2u);
  // Section 3.3: keys absent from the table fall back to hash routing — they
  // are routed immediately, never parked waiting for state.
  EXPECT_EQ(table.route(99, 4), hash_instance(99, 4));
  EXPECT_EQ(table.lookup(99), std::nullopt);
}

TEST(EngineChaos, UnknownKeysFlowDuringDelayedMigration) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  FaultPlan plan(404);
  plan.set(FaultSite::kMigrateDelay, {.rate = 1.0, .magnitude = 50});
  chaos::Injector inj(plan);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .injector = &inj});
  engine.start();
  core::Manager mgr(topo, place, {});

  // Warm up on a small key universe so the plan's tables only know keys
  // below 30 ...
  workload::SyntheticGenerator warm(
      {.num_values = 30, .locality = 0.9, .padding = 0, .seed = 34});
  GroundTruth truth;
  pump(engine, warm, 10'000, &truth);
  engine.flush();
  // ... then reconfigure while a live stream over a 10x larger universe
  // keeps hitting keys no table or awaiting-set has ever seen.  Those hash
  // route and process immediately; the wave still completes even though
  // every migration payload is being redelivered 50 times.
  workload::SyntheticGenerator wide(
      {.num_values = 300, .locality = 0.8, .padding = 0, .seed = 35});
  Feeder feeder(engine, truth, wide);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto plan1 = engine.reconfigure(mgr);
  EXPECT_GT(plan1.total_moves(), 0u);
  feeder.stop();
  engine.flush();

  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  engine.shutdown();
}

// --- engine: partial gather --------------------------------------------------

TEST(EngineChaos, PartialGatherPlansDeterministically) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  FaultPlan plan(505);
  plan.set(FaultSite::kStatsLoss, {.rate = 0.4});
  plan.set(FaultSite::kStatsDelay, {.rate = 0.3});

  // Two engines, same seed, same deterministic input (pump + flush, no
  // concurrent feeder): the lost/stale report sets — and therefore the
  // plans — must come out identical, because the loss decisions are keyed
  // by (sender, gather epoch), not by reply arrival order.
  auto run = [&](runtime::Engine& engine, core::Manager& mgr)
      -> std::pair<core::ReconfigurationPlan, core::ReconfigurationPlan> {
    workload::SyntheticGenerator gen(
        {.num_values = 80, .locality = 0.9, .padding = 0, .seed = 36});
    pump(engine, gen, 15'000);
    engine.flush();
    auto p1 = engine.reconfigure(mgr);
    pump(engine, gen, 15'000);
    engine.flush();
    auto p2 = engine.reconfigure(mgr);  // merges epoch-1 stale reports
    return {std::move(p1), std::move(p2)};
  };

  chaos::Injector inj_a(plan);
  runtime::Engine a(topo, place, counting_factory(),
                    {.fields_mode = FieldsRouting::kTable, .injector = &inj_a});
  a.start();
  core::Manager mgr_a(topo, place, {});
  const auto [a1, a2] = run(a, mgr_a);

  chaos::Injector inj_b(plan);
  runtime::Engine b(topo, place, counting_factory(),
                    {.fields_mode = FieldsRouting::kTable, .injector = &inj_b});
  b.start();
  core::Manager mgr_b(topo, place, {});
  const auto [b1, b2] = run(b, mgr_b);

  EXPECT_EQ(inj_a.fired(FaultSite::kStatsLoss),
            inj_b.fired(FaultSite::kStatsLoss));
  EXPECT_EQ(inj_a.fired(FaultSite::kStatsDelay),
            inj_b.fired(FaultSite::kStatsDelay));
  EXPECT_GT(inj_a.fired(FaultSite::kStatsLoss), 0u);
  ASSERT_EQ(a1.tables.size(), b1.tables.size());
  for (const auto& [op, table] : a1.tables) {
    ASSERT_TRUE(b1.tables.contains(op));
    EXPECT_EQ(table->sorted_entries(), b1.tables.at(op)->sorted_entries());
  }
  EXPECT_EQ(a1.total_moves(), b1.total_moves());
  EXPECT_EQ(a2.total_moves(), b2.total_moves());

  const auto ma = a.metrics();
  const auto mb = b.metrics();
  EXPECT_EQ(ma.stats_reports_lost, mb.stats_reports_lost);
  EXPECT_EQ(ma.stats_reports_stale, mb.stats_reports_stale);
  EXPECT_GT(ma.stats_reports_lost, 0u);
  a.shutdown();
  b.shutdown();
}

// --- engine: everything at once, many threads (TSan target) ------------------

TEST(EngineChaos, AllFaultsStressManyThreads) {
  // 12 POI threads + 2 feeders + the driver; `ctest -L chaos` under
  // -DLAR_SANITIZE=thread must come back clean.
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  FaultPlan plan(606);
  plan.set(FaultSite::kChannelDelay, {.rate = 0.01});
  plan.set(FaultSite::kChannelDuplicate, {.rate = 0.01});
  plan.set(FaultSite::kWorkerStall, {.rate = 0.01, .magnitude = 2});
  plan.set(FaultSite::kStatsLoss, {.rate = 0.2});
  plan.set(FaultSite::kStatsDelay, {.rate = 0.2});
  plan.set(FaultSite::kMigrateDelay, {.rate = 0.5, .magnitude = 3});
  plan.set(FaultSite::kMigrateDuplicate, {.rate = 0.5});
  obs::Registry registry;
  obs::TraceRecorder trace;
  chaos::Injector inj(plan, &registry, &trace);
  runtime::Engine engine(topo, place, counting_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .registry = &registry,
                          .trace = &trace,
                          .injector = &inj,
                          .buffered_tuples_cap = 8});
  engine.start();
  core::Manager mgr(topo, place, {});

  // Each feeder records into its own ground truth (ExactCounter is not
  // thread-safe); the truths merge once both threads have joined.
  GroundTruth truth1;
  GroundTruth truth2;
  workload::SyntheticGenerator gen1(
      {.num_values = 120, .locality = 0.8, .padding = 0, .seed = 37});
  workload::SyntheticGenerator gen2(
      {.num_values = 120, .locality = 0.8, .padding = 0, .seed = 38});
  Feeder feeder1(engine, truth1, gen1);
  Feeder feeder2(engine, truth2, gen2);
  for (int round = 0; round < 3; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    engine.reconfigure(mgr);
  }
  feeder1.stop();
  feeder2.stop();
  engine.flush();

  GroundTruth truth;
  for (GroundTruth* t : {&truth1, &truth2}) {
    for (const auto& e : t->field0.entries()) truth.field0.add(e.key, e.count);
    for (const auto& e : t->field1.entries()) truth.field1.add(e.key, e.count);
  }
  expect_counts_match(engine, 1, n, truth.field0);
  expect_counts_match(engine, 2, n, truth.field1);
  engine.publish_metrics();
  // The chaos metric families are published once the injector is configured.
  const std::string prom = obs::to_prometheus(registry);
  EXPECT_NE(prom.find("lar_chaos_faults_total"), std::string::npos);
  engine.shutdown();
}

// --- simulator ---------------------------------------------------------------

sim::SimConfig sim_config() {
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  cfg.seed = 3;
  return cfg;
}

TEST(SimChaos, SameSeedRunsAreByteIdentical) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  auto run = [&]() -> std::string {
    sim::Simulator simulator(topo, place, sim_config(), FieldsRouting::kTable);
    simulator.set_fault_plan(FaultPlan::uniform(77, 0.25));
    core::Manager mgr(topo, place, {});
    workload::SyntheticGenerator gen(
        {.num_values = 60, .locality = 0.8, .padding = 16, .seed = 40});
    for (int cycle = 0; cycle < 4; ++cycle) {
      simulator.run_window(gen, 4000);
      simulator.reconfigure(mgr);
    }
    return obs::report_json(simulator.registry(), &simulator.trace());
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("lar_chaos_faults_total"), std::string::npos);
  EXPECT_NE(first.find("\"fault\""), std::string::npos);
  EXPECT_NE(first.find("\"recover\""), std::string::npos);
}

TEST(SimChaos, ZeroRatePlanMatchesUnarmedPlans) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  auto plan_with = [&](bool armed) {
    sim::Simulator simulator(topo, place, sim_config(), FieldsRouting::kTable);
    if (armed) simulator.set_fault_plan(FaultPlan(9));  // all rates zero
    core::Manager mgr(topo, place, {});
    workload::SyntheticGenerator gen(
        {.num_values = 45, .locality = 0.9, .padding = 0, .seed = 41});
    simulator.run_window(gen, 5000);
    return simulator.reconfigure(mgr);
  };
  const auto armed = plan_with(true);
  const auto unarmed = plan_with(false);
  ASSERT_EQ(armed.tables.size(), unarmed.tables.size());
  for (const auto& [op, table] : armed.tables) {
    EXPECT_EQ(table->sorted_entries(), unarmed.tables.at(op)->sorted_entries());
  }
  EXPECT_EQ(armed.total_moves(), unarmed.total_moves());
}

TEST(SimChaos, TotalReportLossStillPlansAndReportsStaleness) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  sim::Simulator simulator(topo, place, sim_config(), FieldsRouting::kTable);
  FaultPlan plan(808);
  plan.set(FaultSite::kStatsLoss, {.rate = 1.0});
  simulator.set_fault_plan(plan);
  core::Manager mgr(topo, place, {});
  workload::SyntheticGenerator gen(
      {.num_values = 45, .locality = 0.9, .padding = 0, .seed = 42});
  simulator.run_window(gen, 5000);
  // Every report is lost: the manager plans from an empty statistics set —
  // a no-op plan, not a hang and not a crash.
  const auto p = simulator.reconfigure(mgr);
  EXPECT_TRUE(p.tables.empty());
  EXPECT_GT(simulator.registry()
                .gauge("lar_chaos_gather_lost_reports", {})
                .value(),
            0.0);
  // The stream itself is untouched by gather faults.
  const auto report = simulator.run_window(gen, 5000);
  EXPECT_GT(report.throughput, 0.0);
}

}  // namespace
}  // namespace lar
