// Deployment-shape tests: more instances than servers, explicit placements,
// single-server degenerate deployments, and the logging facility.
#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hpp"
#include "core/manager.hpp"
#include "runtime/engine.hpp"
#include "sim/simulator.hpp"
#include "sketch/exact_counter.hpp"
#include "workload/synthetic.hpp"

namespace lar {
namespace {

runtime::OperatorFactory chain_factory() {
  return [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
    return std::make_unique<runtime::CountingOperator>(op - 1);
  };
}

// --- parallelism > servers -----------------------------------------------------

TEST(Deployment, MoreInstancesThanServersStillOptimizes) {
  // 6 instances per PO on 3 servers: two local instances per op per server;
  // the manager spreads a server's keys among its local instances by hash.
  const std::uint32_t parallelism = 6;
  const std::uint32_t servers = 3;
  const Topology topo = make_two_stage_topology(parallelism);
  const Placement place = Placement::round_robin(topo, servers);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  workload::SyntheticGenerator gen(
      {.num_values = 300, .locality = 0.9, .padding = 0, .seed = 41});
  const auto before = simulator.run_window(gen, 40'000);
  const auto plan = simulator.reconfigure(manager);
  EXPECT_GT(plan.keys_assigned, 0u);
  // Every table target is a valid instance index.
  for (const auto& [op, table] : plan.tables) {
    for (const auto& [key, inst] : table->sorted_entries()) {
      EXPECT_LT(inst, parallelism);
    }
  }
  const auto after = simulator.run_window(gen, 40'000);
  EXPECT_GT(after.edge_locality[1], before.edge_locality[1] + 0.3);
}

TEST(Deployment, RuntimeExactnessWithWrappedPlacement) {
  const std::uint32_t parallelism = 4;
  const std::uint32_t servers = 2;
  const Topology topo = make_two_stage_topology(parallelism);
  const Placement place = Placement::round_robin(topo, servers);
  runtime::Engine engine(topo, place, chain_factory(),
                         {.fields_mode = FieldsRouting::kTable});
  engine.start();
  core::Manager manager(topo, place, {});
  workload::SyntheticGenerator gen(
      {.num_values = 80, .locality = 0.7, .padding = 0, .seed = 42});
  sketch::ExactCounter<Key> truth;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 8000; ++i) {
      Tuple t = gen.next();
      truth.add(t.fields[1]);
      engine.inject(std::move(t));
    }
    engine.flush();
    engine.reconfigure(manager);
  }
  for (const auto& e : truth.entries()) {
    std::uint64_t sum = 0;
    for (InstanceIndex i = 0; i < parallelism; ++i) {
      sum += static_cast<runtime::CountingOperator&>(engine.operator_at(2, i))
                 .count(e.key);
    }
    ASSERT_EQ(sum, e.count);
  }
  engine.shutdown();
}

TEST(Deployment, SingleServerIsDegenerateButCorrect) {
  // Everything co-located: locality is trivially 1 and reconfiguration must
  // produce no migrations that break anything.
  const Topology topo = make_two_stage_topology(3);
  const Placement place = Placement::round_robin(topo, 1);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kHash);
  core::Manager manager(topo, place, {});
  workload::SyntheticGenerator gen(
      {.num_values = 50, .locality = 0.5, .padding = 0, .seed = 43});
  const auto report = simulator.run_window(gen, 10'000);
  EXPECT_DOUBLE_EQ(report.edge_locality[1], 1.0);
  const auto plan = simulator.reconfigure(manager);
  // One server: every key maps to some instance there; no cross-server cut.
  EXPECT_DOUBLE_EQ(plan.expected_locality, 1.0);
}

TEST(Deployment, ExplicitPlacementDrivesLocality) {
  // Put B's instances on the OPPOSITE servers of A's: the identity oracle
  // that is perfect under aligned placement becomes maximally remote.
  const std::uint32_t n = 2;
  const Topology topo = make_two_stage_topology(n);
  const Placement aligned = Placement::round_robin(topo, n);
  const Placement crossed = Placement::explicit_placement(
      {{0, 1}, {0, 1}, {1, 0}}, n);  // B's instances swapped
  workload::SyntheticGenerator gen1(
      {.num_values = n, .locality = 1.0, .padding = 0, .seed = 44});
  workload::SyntheticGenerator gen2 = gen1;
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  sim::Simulator sa(topo, aligned, cfg, FieldsRouting::kIdentity);
  sim::Simulator sc(topo, crossed, cfg, FieldsRouting::kIdentity);
  EXPECT_DOUBLE_EQ(sa.run_window(gen1, 5'000).edge_locality[1], 1.0);
  EXPECT_DOUBLE_EQ(sc.run_window(gen2, 5'000).edge_locality[1], 0.0);
}

TEST(Deployment, ManagerAdaptsToExplicitPlacement) {
  // With B's instances swapped across servers, the manager's tables must
  // compensate: correlated keys still end up co-located.
  const std::uint32_t n = 2;
  const Topology topo = make_two_stage_topology(n);
  const Placement crossed = Placement::explicit_placement(
      {{0, 1}, {0, 1}, {1, 0}}, n);
  core::Manager manager(topo, crossed, {});
  std::vector<core::PairCount> pairs;
  for (std::uint32_t i = 0; i < 20; ++i) {
    pairs.push_back(core::PairCount{i, 100 + i, 10});
  }
  const auto plan = manager.compute_plan({core::HopStats{1, 2, pairs}});
  EXPECT_DOUBLE_EQ(plan.expected_locality, 1.0);
  for (std::uint32_t i = 0; i < 20; ++i) {
    const auto a = plan.tables.at(1)->lookup(i);
    const auto b = plan.tables.at(2)->lookup(100 + i);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(crossed.server_of(1, *a), crossed.server_of(2, *b));
  }
}

// --- logging ----------------------------------------------------------------------

TEST(Logging, LevelsFilter) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(detail::log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(detail::log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(detail::log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kDebug);
  EXPECT_TRUE(detail::log_enabled(LogLevel::kDebug));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(detail::log_enabled(LogLevel::kError));
  set_log_level(before);
}

TEST(Logging, MacroShortCircuitsWhenDisabled) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  LAR_DEBUG << expensive();
  EXPECT_EQ(evaluations, 0);  // stream expression never evaluated
  set_log_level(before);
}

}  // namespace
}  // namespace lar
