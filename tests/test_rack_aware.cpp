// Tests for the hierarchical (rack-aware) extension — the paper's Section 6
// future work: rack placement, hierarchical partitioning in the Manager, and
// uplink accounting in the simulator.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/bipartite.hpp"
#include "core/manager.hpp"
#include "partition/quality.hpp"
#include "sim/simulator.hpp"
#include "workload/flickr_like.hpp"
#include "workload/synthetic.hpp"

namespace lar {
namespace {

// --- placement ------------------------------------------------------------------

TEST(Racks, DefaultPlacementIsOneRack) {
  const Topology topo = make_two_stage_topology(4);
  const Placement p = Placement::round_robin(topo, 4);
  EXPECT_EQ(p.num_racks(), 1u);
  for (ServerId s = 0; s < 4; ++s) EXPECT_EQ(p.rack_of(s), 0u);
  EXPECT_EQ(p.servers_in_rack(0).size(), 4u);
}

TEST(Racks, RackedPlacementGroupsConsecutiveServers) {
  const Topology topo = make_two_stage_topology(6);
  const Placement p = Placement::round_robin_racked(topo, 6, 3);
  EXPECT_EQ(p.num_racks(), 2u);
  EXPECT_EQ(p.rack_of(0), 0u);
  EXPECT_EQ(p.rack_of(2), 0u);
  EXPECT_EQ(p.rack_of(3), 1u);
  EXPECT_EQ(p.rack_of(5), 1u);
  EXPECT_EQ(p.servers_in_rack(1), (std::vector<ServerId>{3, 4, 5}));
}

// --- simulator accounting ----------------------------------------------------------

TEST(Racks, UplinkBytesOnlyForCrossRackTraffic) {
  const Topology topo = make_two_stage_topology(4);
  const Placement p = Placement::round_robin_racked(topo, 4, 2);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  cfg.rack_uplink_bandwidth = 1e9;
  sim::PipelineModel model(topo, p, cfg, FieldsRouting::kIdentity);

  // (0, 4+1): S_0 local to A_0 (server 0); A_0 -> B_1: server 0 -> 1, SAME
  // rack.  No uplink bytes.
  model.process(Tuple{.fields = {0, 5}, .padding = 100});
  EXPECT_EQ(model.stats().uplink_out[0], 0u);
  EXPECT_EQ(model.stats().edge_rack_remote[1], 0u);
  EXPECT_EQ(model.stats().edge_traffic[1].remote, 1u);

  // (0, 4+2): A_0 -> B_2: server 0 (rack 0) -> server 2 (rack 1): uplink.
  const Tuple cross{.fields = {0, 6}, .padding = 100};
  model.process(cross);
  EXPECT_EQ(model.stats().uplink_out[0],
            static_cast<std::uint64_t>(cross.serialized_size()));
  EXPECT_EQ(model.stats().uplink_in[1],
            static_cast<std::uint64_t>(cross.serialized_size()));
  EXPECT_EQ(model.stats().edge_rack_remote[1], 1u);
}

TEST(Racks, RackLocalityReportedPerEdge) {
  const Topology topo = make_two_stage_topology(4);
  const Placement p = Placement::round_robin_racked(topo, 4, 2);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  sim::Simulator simulator(topo, p, cfg, FieldsRouting::kIdentity);
  workload::SyntheticGenerator gen(
      {.num_values = 4000, .locality = 1.0, .padding = 0, .seed = 2});
  const auto report = simulator.run_window(gen, 10'000);
  // Fully correlated + identity: everything server-local => rack-local too.
  EXPECT_DOUBLE_EQ(report.edge_rack_locality[1], 1.0);
  EXPECT_DOUBLE_EQ(report.edge_locality[1], 1.0);
}

TEST(Racks, TightUplinkBecomesTheBottleneck) {
  const Topology topo = make_two_stage_topology(4);
  const Placement p = Placement::round_robin_racked(topo, 4, 2);
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  cfg.rack_uplink_bandwidth = 1e7;  // tiny shared uplink
  sim::Simulator simulator(topo, p, cfg, FieldsRouting::kHash);
  workload::SyntheticGenerator gen(
      {.num_values = 4000, .locality = 0.5, .padding = 8'000, .seed = 3});
  const auto report = simulator.run_window(gen, 10'000);
  EXPECT_TRUE(report.bottleneck == sim::Resource::kUplinkOut ||
              report.bottleneck == sim::Resource::kUplinkIn);
}

// --- hierarchical manager -------------------------------------------------------------

TEST(Racks, ContiguousRacksAreImplicitlyHandledByRecursiveBisection) {
  // With racks = contiguous server ranges, flat recursive bisection's first
  // split coincides with the rack split, so flat and hierarchical plans get
  // comparable rack locality — worth pinning down as a property.
  const std::uint32_t n = 6;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin_racked(topo, n, 3);
  workload::FlickrLikeConfig wcfg;
  wcfg.num_tags = 3000;
  wcfg.num_countries = 60;
  wcfg.seed = 4;
  sim::SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  sim::Simulator simulator(topo, place, cfg, FieldsRouting::kTable);
  core::Manager manager(topo, place, {});
  workload::FlickrLikeGenerator gen(wcfg);
  simulator.run_window(gen, 50'000);
  simulator.reconfigure(manager);
  const auto report = simulator.run_window(gen, 50'000);
  EXPECT_GT(report.edge_rack_locality[1], report.edge_locality[1] + 0.1);
}

TEST(Racks, RackAwarePlanKeepsCommunitiesWithinRacks) {
  // A workload with *community* structure coarser than one server: two
  // "continents", each a dense cluster of 30 tags x 6 countries that does
  // not fit on a single server but fits in a rack.  Racks are interleaved
  // (server s in rack s % 2, i.e. machine numbering does not follow the
  // physical layout), so flat recursive bisection — whose top split follows
  // server numbering — scatters each continent across racks, while
  // hierarchical partitioning keeps each continent rack-local.
  const std::uint32_t n = 6;
  const Topology topo = make_two_stage_topology(n);
  const Placement place =
      Placement::round_robin(topo, n).with_racks({0, 1, 0, 1, 0, 1});

  std::vector<core::PairCount> pairs;
  Rng rng(9);
  for (std::uint32_t community = 0; community < 2; ++community) {
    for (std::uint32_t t = 0; t < 30; ++t) {
      const Key tag = community * 1000 + t;
      for (int e = 0; e < 4; ++e) {
        const Key country =
            5000 + community * 100 + rng.below(6);  // community's countries
        pairs.push_back(core::PairCount{tag, country, 50});
      }
    }
  }

  auto rack_cut_fraction = [&](bool rack_aware) {
    core::ManagerOptions mopts;
    mopts.rack_aware = rack_aware;
    core::Manager manager(topo, place, mopts);
    const auto plan = manager.compute_plan({core::HopStats{1, 2, pairs}});
    // Rebuild the key graph and measure the cut under the rack mapping.
    core::BipartiteGraphBuilder builder;
    builder.add_pairs(1, 2, pairs);
    const core::KeyGraph kg = builder.build();
    std::vector<std::uint32_t> rack_of_key(kg.vertices.size());
    for (std::size_t v = 0; v < kg.vertices.size(); ++v) {
      const auto& kv = kg.vertices[v];
      const InstanceIndex inst =
          plan.tables.at(kv.op)->route(kv.key, topo.op(kv.op).parallelism);
      rack_of_key[v] = place.rack_of(place.server_of(kv.op, inst));
    }
    return static_cast<double>(
               partition::edge_cut(kg.graph, rack_of_key)) /
           static_cast<double>(kg.graph.total_edge_weight());
  };

  const double flat = rack_cut_fraction(false);
  const double hier = rack_cut_fraction(true);
  EXPECT_LT(hier, 0.05);        // continents stay rack-local
  EXPECT_GT(flat, hier + 0.15);  // flat bisection crosses racks heavily
}

TEST(Racks, RackAwareIgnoredOnSingleRack) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  core::ManagerOptions mopts;
  mopts.rack_aware = true;  // no racks defined: must behave exactly as flat
  core::Manager with(topo, place, mopts);
  core::Manager without(topo, place, {});
  std::vector<core::PairCount> pairs;
  for (std::uint32_t i = 0; i < 24; ++i) {
    pairs.push_back(core::PairCount{i, 900 + i, 10});
  }
  const auto a = with.compute_plan({core::HopStats{1, 2, pairs}});
  const auto b = without.compute_plan({core::HopStats{1, 2, pairs}});
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (const auto& [op, table] : a.tables) {
    for (const auto& [key, inst] : table->sorted_entries()) {
      EXPECT_EQ(b.tables.at(op)->lookup(key).value(), inst);
    }
  }
}

}  // namespace
}  // namespace lar
