// Tests for the performance simulator: traffic accounting, throughput
// solving, and Manager integration.
#include <gtest/gtest.h>

#include "core/manager.hpp"
#include "sim/simulator.hpp"
#include "workload/flickr_like.hpp"
#include "workload/synthetic.hpp"

namespace lar::sim {
namespace {

SimConfig synthetic_config() {
  SimConfig cfg;
  cfg.source_mode = SourceMode::kAlignedField0;
  cfg.seed = 3;
  return cfg;
}

/// Fixed-content generator for hand-computable accounting tests.
class FixedGenerator final : public workload::TupleGenerator {
 public:
  explicit FixedGenerator(Tuple t) : tuple_(std::move(t)) {}
  Tuple next() override { return tuple_; }

 private:
  Tuple tuple_;
};

// --- traffic accounting -------------------------------------------------------

TEST(Pipeline, FullyLocalTupleTouchesNoNic) {
  const Topology topo = make_two_stage_topology(2);
  const Placement place = Placement::round_robin(topo, 2);
  PipelineModel model(topo, place, synthetic_config(), FieldsRouting::kIdentity);
  // (1, 2+1): source instance 1, A_1, B_1 — all on server 1.
  FixedGenerator gen(Tuple{.fields = {1, 3}, .padding = 100});
  for (int i = 0; i < 10; ++i) model.process(gen.next());
  const TrafficStats& s = model.stats();
  EXPECT_EQ(s.tuples, 10u);
  EXPECT_EQ(s.nic_out[0] + s.nic_out[1], 0u);
  EXPECT_EQ(s.nic_in[0] + s.nic_in[1], 0u);
  EXPECT_EQ(s.edge_traffic[0].local, 10u);
  EXPECT_EQ(s.edge_traffic[1].local, 10u);
  // CPU: 10 * (0.05 + 1 + 1) on server 1, nothing on server 0.
  EXPECT_NEAR(s.cpu_units[1], 10 * 2.05, 1e-9);
  EXPECT_EQ(s.cpu_units[0], 0.0);
  EXPECT_EQ(s.instance_load[1][1], 10u);
  EXPECT_EQ(s.instance_load[1][0], 0u);
}

TEST(Pipeline, CrossServerHopAccountedOnBothNics) {
  const Topology topo = make_two_stage_topology(2);
  const Placement place = Placement::round_robin(topo, 2);
  SimConfig cfg = synthetic_config();
  PipelineModel model(topo, place, cfg, FieldsRouting::kIdentity);
  // (0, 2+1): S_0 -> A_0 local; A_0 -> B_1 remote.
  FixedGenerator gen(Tuple{.fields = {0, 3}, .padding = 100});
  model.process(gen.next());
  const TrafficStats& s = model.stats();
  const std::uint32_t bytes = Tuple{.fields = {0, 3}, .padding = 100}
                                  .serialized_size();
  EXPECT_EQ(s.edge_traffic[1].remote, 1u);
  EXPECT_EQ(s.nic_out[0], bytes);
  EXPECT_EQ(s.nic_in[1], bytes);
  EXPECT_EQ(s.nic_out[1], 0u);
  // Serialization CPU charged to both endpoints.
  const double ser = cfg.per_msg_cpu + cfg.per_byte_cpu * bytes;
  EXPECT_NEAR(s.cpu_units[0], 0.05 + 1.0 + ser, 1e-9);
  EXPECT_NEAR(s.cpu_units[1], 1.0 + ser, 1e-9);
}

TEST(Pipeline, InstanceLoadsConserveTuples) {
  const Topology topo = make_two_stage_topology(4);
  const Placement place = Placement::round_robin(topo, 4);
  PipelineModel model(topo, place, synthetic_config(), FieldsRouting::kHash);
  workload::SyntheticGenerator gen(
      {.num_values = 400, .locality = 0.5, .padding = 0, .seed = 5});
  const std::uint64_t n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) model.process(gen.next());
  const TrafficStats& s = model.stats();
  for (OperatorId op = 0; op < 3; ++op) {
    std::uint64_t sum = 0;
    for (const auto load : s.instance_load[op]) sum += load;
    EXPECT_EQ(sum, n) << "operator " << op;
  }
  EXPECT_EQ(s.edge_traffic[0].local + s.edge_traffic[0].remote, n);
  EXPECT_EQ(s.edge_traffic[1].local + s.edge_traffic[1].remote, n);
}

TEST(Pipeline, ResetStatsZeroesCountersButKeepsPairStats) {
  const Topology topo = make_two_stage_topology(2);
  const Placement place = Placement::round_robin(topo, 2);
  PipelineModel model(topo, place, synthetic_config(), FieldsRouting::kHash);
  workload::SyntheticGenerator gen(
      {.num_values = 200, .locality = 0.5, .padding = 0, .seed = 6});
  for (int i = 0; i < 100; ++i) model.process(gen.next());
  model.reset_stats();
  EXPECT_EQ(model.stats().tuples, 0u);
  EXPECT_EQ(model.stats().edge_traffic[1].local, 0u);
  // Pair statistics survive a window boundary (they feed the next reconfig).
  const auto hops = model.collect_hop_stats();
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_FALSE(hops[0].pairs.empty());
  model.reset_pair_stats();
  EXPECT_TRUE(model.collect_hop_stats()[0].pairs.empty());
}

TEST(Pipeline, HopStatsComeFromTheStatefulHopOnly) {
  const Topology topo = make_two_stage_topology(3);
  const Placement place = Placement::round_robin(topo, 3);
  PipelineModel model(topo, place, synthetic_config(), FieldsRouting::kHash);
  workload::SyntheticGenerator gen(
      {.num_values = 300, .locality = 1.0, .padding = 0, .seed = 7});
  for (int i = 0; i < 1000; ++i) model.process(gen.next());
  const auto hops = model.collect_hop_stats();
  ASSERT_EQ(hops.size(), 1u);  // S->A unobservable (S stateless)
  EXPECT_EQ(hops[0].in_op, 1u);
  EXPECT_EQ(hops[0].out_op, 2u);
  // With locality 1.0 every pair is diagonal: (i, n+i).
  for (const auto& pc : hops[0].pairs) {
    EXPECT_EQ(pc.out, 300 + pc.in);
  }
}

// --- locality of routing modes ---------------------------------------------------

TEST(Simulator, IdentityRoutingAchievesWorkloadLocality) {
  const Topology topo = make_two_stage_topology(6);
  const Placement place = Placement::round_robin(topo, 6);
  Simulator sim(topo, place, synthetic_config(), FieldsRouting::kIdentity);
  workload::SyntheticGenerator gen(
      {.num_values = 600, .locality = 0.8, .padding = 0, .seed = 8});
  const auto report = sim.run_window(gen, 50'000);
  // locality + 1/n coincidence of the uncorrelated rest.
  EXPECT_NEAR(report.edge_locality[1], 0.8 + 0.2 / 6.0, 0.01);
  EXPECT_NEAR(report.edge_locality[0], 1.0, 1e-9);  // aligned source
}

TEST(Simulator, WorstCaseRoutingKillsLocality) {
  const Topology topo = make_two_stage_topology(6);
  const Placement place = Placement::round_robin(topo, 6);
  Simulator sim(topo, place, synthetic_config(), FieldsRouting::kWorstCase);
  workload::SyntheticGenerator gen(
      {.num_values = 600, .locality = 1.0, .padding = 0, .seed = 9});
  const auto report = sim.run_window(gen, 20'000);
  EXPECT_EQ(report.edge_locality[0], 0.0);  // rotation: S->A never local
  EXPECT_EQ(report.edge_locality[1], 0.0);  // correlated pairs never local
}

TEST(Simulator, HashRoutingLocalityIsOneOverN) {
  const Topology topo = make_two_stage_topology(6);
  const Placement place = Placement::round_robin(topo, 6);
  Simulator sim(topo, place, synthetic_config(), FieldsRouting::kHash);
  workload::SyntheticGenerator gen(
      {.num_values = 600, .locality = 1.0, .padding = 0, .seed = 10});
  const auto report = sim.run_window(gen, 50'000);
  EXPECT_NEAR(report.edge_locality[1], 1.0 / 6.0, 0.03);
}

// --- throughput solver -------------------------------------------------------------

TEST(Simulator, FullLocalityIsBandwidthIndependent) {
  const Topology topo = make_two_stage_topology(4);
  const Placement place = Placement::round_robin(topo, 4);
  workload::SyntheticGenerator gen(
      {.num_values = 400, .locality = 1.0, .padding = 20'000, .seed = 11});
  SimConfig fast = synthetic_config();
  SimConfig slow = synthetic_config();
  slow.nic_bandwidth = kOneGbps;
  Simulator sim_fast(topo, place, fast, FieldsRouting::kIdentity);
  Simulator sim_slow(topo, place, slow, FieldsRouting::kIdentity);
  workload::SyntheticGenerator gen2 = gen;
  const double t_fast = sim_fast.run_window(gen, 20'000).throughput;
  const double t_slow = sim_slow.run_window(gen2, 20'000).throughput;
  EXPECT_NEAR(t_fast, t_slow, t_fast * 1e-9);
}

TEST(Simulator, ThroughputMonotoneInPadding) {
  const Topology topo = make_two_stage_topology(4);
  const Placement place = Placement::round_robin(topo, 4);
  double prev = 1e18;
  for (const std::uint32_t padding : {0u, 1000u, 4000u, 12'000u, 20'000u}) {
    Simulator sim(topo, place, synthetic_config(), FieldsRouting::kHash);
    workload::SyntheticGenerator gen(
        {.num_values = 400, .locality = 0.6, .padding = padding, .seed = 12});
    const double t = sim.run_window(gen, 20'000).throughput;
    EXPECT_LE(t, prev + 1.0);
    prev = t;
  }
}

TEST(Simulator, BottleneckShiftsToNicOnSlowNetwork) {
  const Topology topo = make_two_stage_topology(6);
  const Placement place = Placement::round_robin(topo, 6);
  SimConfig slow = synthetic_config();
  slow.nic_bandwidth = kOneGbps;
  Simulator sim(topo, place, slow, FieldsRouting::kHash);
  workload::SyntheticGenerator gen(
      {.num_values = 600, .locality = 0.6, .padding = 12'000, .seed = 13});
  const auto report = sim.run_window(gen, 20'000);
  EXPECT_NE(report.bottleneck, Resource::kCpu);
}

TEST(Simulator, CpuBoundAtZeroPadding) {
  const Topology topo = make_two_stage_topology(2);
  const Placement place = Placement::round_robin(topo, 2);
  Simulator sim(topo, place, synthetic_config(), FieldsRouting::kIdentity);
  workload::SyntheticGenerator gen(
      {.num_values = 200, .locality = 1.0, .padding = 0, .seed = 14});
  const auto report = sim.run_window(gen, 10'000);
  EXPECT_EQ(report.bottleneck, Resource::kCpu);
  // All-local chain split over 2 servers: each handles half the rate, so
  // R = 2 * capacity / (0.05 + 1 + 1).
  const double expected = 2 * 225'000.0 / 2.05;
  EXPECT_NEAR(report.throughput, expected, expected * 0.02);
}

// --- Manager integration ------------------------------------------------------------

TEST(Simulator, ReconfigureLiftsLocalityToWorkloadCeiling) {
  const Topology topo = make_two_stage_topology(4);
  const Placement place = Placement::round_robin(topo, 4);
  SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  Simulator sim(topo, place, cfg, FieldsRouting::kTable);
  core::Manager mgr(topo, place, {});
  workload::FlickrLikeConfig wcfg;
  wcfg.num_tags = 2000;
  wcfg.num_countries = 50;
  wcfg.correlation = 0.6;
  wcfg.seed = 15;
  workload::FlickrLikeGenerator gen(wcfg);

  const auto before = sim.run_window(gen, 50'000);
  EXPECT_LT(before.edge_locality[1], 0.35);
  const auto plan = sim.reconfigure(mgr);
  EXPECT_GT(plan.keys_assigned, 0u);
  const auto after = sim.run_window(gen, 50'000);
  EXPECT_GT(after.edge_locality[1], 0.5);
  EXPECT_GT(after.throughput, before.throughput);
}

TEST(Simulator, ReconfigureImprovesLoadBalanceOnSkew) {
  const Topology topo = make_two_stage_topology(6);
  const Placement place = Placement::round_robin(topo, 6);
  SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  Simulator sim(topo, place, cfg, FieldsRouting::kHash);
  core::Manager mgr(topo, place, {});
  workload::FlickrLikeConfig wcfg;
  wcfg.num_tags = 5000;
  wcfg.zipf_tags = 1.2;  // strong skew: hash balances poorly
  wcfg.seed = 16;
  workload::FlickrLikeGenerator gen(wcfg);

  const auto before = sim.run_window(gen, 50'000);
  sim.reconfigure(mgr);
  const auto after = sim.run_window(gen, 50'000);
  // Operator A (op id 1) receives the skewed tag keys.
  EXPECT_LT(after.op_load_balance[1], before.op_load_balance[1]);
}

TEST(Simulator, ApplyPlanInstallsTables) {
  const Topology topo = make_two_stage_topology(2);
  const Placement place = Placement::round_robin(topo, 2);
  Simulator sim(topo, place, synthetic_config(), FieldsRouting::kTable);
  core::Manager mgr(topo, place, {});
  // Offline-style: compute a plan from external stats, apply it.
  std::vector<core::PairCount> pairs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    pairs.push_back(core::PairCount{i, 100 + i, 10});
  }
  auto plan = mgr.compute_plan({core::HopStats{1, 2, pairs}});
  sim.apply_plan(plan);
  // Tuples following the learned diagonal must now be local on A->B.
  for (std::uint32_t i = 0; i < 8; ++i) {
    FixedGenerator gen(Tuple{.fields = {i, 100 + i}, .padding = 0});
    sim.model().process(gen.next());
  }
  EXPECT_EQ(sim.model().stats().edge_traffic[1].remote, 0u);
}

// --- devirtualized routing ---------------------------------------------------

// RouterBank must be decision-for-decision identical to the virtual Router
// objects the runtime uses, for every grouping, every fields mode, every
// emitting instance, including the stateful ones (round-robin cursors and
// partial-key load counters advance per call).
TEST(RouterBank, MatchesVirtualRoutersAcrossAllModes) {
  Topology topo;
  const OperatorId s = topo.add_operator(
      {.name = "S", .parallelism = 3, .is_source = true});
  const OperatorId a = topo.add_operator({.name = "A", .parallelism = 5});
  const OperatorId b = topo.add_operator({.name = "B", .parallelism = 4});
  const OperatorId c = topo.add_operator({.name = "C", .parallelism = 7});
  topo.connect(s, a, GroupingType::kFields, /*key_field=*/0);
  topo.connect(a, b, GroupingType::kShuffle);
  topo.connect(b, c, GroupingType::kLocalOrShuffle);
  const Placement place = Placement::round_robin(topo, 3);

  const auto table = std::make_shared<RoutingTable>();
  for (Key k = 0; k < 40; k += 2) table->assign(k, static_cast<InstanceIndex>(k % 5));

  for (const FieldsRouting mode :
       {FieldsRouting::kHash, FieldsRouting::kPermutation, FieldsRouting::kTable,
        FieldsRouting::kIdentity, FieldsRouting::kWorstCase,
        FieldsRouting::kPartialKey}) {
    RouterBank bank;
    std::vector<std::unique_ptr<Router>> routers;
    std::vector<std::uint32_t> slots;
    const auto& edges = topo.edges();
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const std::uint32_t src_par = topo.op(edges[e].from).parallelism;
      for (InstanceIndex i = 0; i < src_par; ++i) {
        const ServerId srv = place.server_of(edges[e].from, i);
        const std::uint64_t seed = 77 * 1000003 + e * 131 + i;
        routers.push_back(make_router(edges[e], static_cast<std::uint32_t>(e),
                                      topo, place, srv, mode, table, seed));
        slots.push_back(bank.add(edges[e], static_cast<std::uint32_t>(e), topo,
                                 place, srv, mode, table.get(), seed));
      }
    }
    Rng rng(31337);
    for (int round = 0; round < 4000; ++round) {
      const Tuple tuple{.fields = {rng.below(64), rng.below(64)}};
      for (std::size_t r = 0; r < routers.size(); ++r) {
        ASSERT_EQ(bank.route(slots[r], tuple), routers[r]->route(tuple))
            << "mode " << static_cast<int>(mode) << " router " << r
            << " round " << round;
      }
    }
  }
}

// A bank descriptor created without a table (hash fallback) must behave like
// make_router's empty-table TableFieldsRouter, and installing a table
// mid-stream must switch both identically.
TEST(RouterBank, NullTableFallsBackToHashAndSetTableSwitches) {
  const Topology topo = make_two_stage_topology(4);
  const Placement place = Placement::round_robin(topo, 4);
  const EdgeSpec& edge = topo.edges()[1];  // A -> B, fields
  RouterBank bank;
  const std::uint32_t slot =
      bank.add(edge, 1, topo, place, place.server_of(edge.from, 0),
               FieldsRouting::kTable, /*table=*/nullptr, /*seed=*/5);
  auto router = make_router(edge, 1, topo, place, place.server_of(edge.from, 0),
                            FieldsRouting::kTable, nullptr, /*seed=*/5);
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const Tuple t{.fields = {rng.next(), rng.next()}};
    ASSERT_EQ(bank.route(slot, t), router->route(t));
  }
  auto table = std::make_shared<RoutingTable>();
  for (Key k = 0; k < 32; ++k) table->assign(k, static_cast<InstanceIndex>((k + 1) % 4));
  bank.set_table(slot, table.get());
  router->set_table(table);
  for (int i = 0; i < 500; ++i) {
    const Tuple t{.fields = {rng.below(64), rng.below(64)}};
    ASSERT_EQ(bank.route(slot, t), router->route(t));
  }
}

// run_window feeds tuples through process_batch; the reports (and the raw
// traffic counters) must be bit-identical to an unbatched twin model fed one
// tuple at a time from an identically seeded generator.
TEST(Simulator, BatchedWindowBitIdenticalToSingleTupleFeed) {
  const Topology topo = make_two_stage_topology(5);
  const Placement place = Placement::round_robin(topo, 5);
  SimConfig cfg = synthetic_config();
  cfg.source_mode = SourceMode::kRoundRobin;

  // Batched path: the Simulator's run_window.
  Simulator sim(topo, place, cfg, FieldsRouting::kHash);
  workload::SyntheticGenerator gen_batched(
      {.num_values = 500, .locality = 0.6, .padding = 8, .seed = 77});
  const auto report = sim.run_window(gen_batched, 10'001);  // not a multiple
                                                            // of the batch

  // Unbatched twin: same construction, same generator seed, process() loop.
  PipelineModel twin(topo, place, cfg, FieldsRouting::kHash);
  workload::SyntheticGenerator gen_single(
      {.num_values = 500, .locality = 0.6, .padding = 8, .seed = 77});
  for (int i = 0; i < 10'001; ++i) twin.process(gen_single.next());

  const TrafficStats& sa = sim.model().stats();
  const TrafficStats& sb = twin.stats();
  ASSERT_EQ(sa.tuples, sb.tuples);
  for (std::size_t e = 0; e < sa.edge_traffic.size(); ++e) {
    EXPECT_EQ(sa.edge_traffic[e].local, sb.edge_traffic[e].local) << e;
    EXPECT_EQ(sa.edge_traffic[e].remote, sb.edge_traffic[e].remote) << e;
    EXPECT_EQ(sa.edge_remote_bytes[e], sb.edge_remote_bytes[e]) << e;
  }
  for (std::size_t srv = 0; srv < sa.cpu_units.size(); ++srv) {
    EXPECT_EQ(sa.cpu_units[srv], sb.cpu_units[srv]) << srv;  // bit-identical
    EXPECT_EQ(sa.nic_out[srv], sb.nic_out[srv]) << srv;
    EXPECT_EQ(sa.nic_in[srv], sb.nic_in[srv]) << srv;
  }
  ASSERT_EQ(sa.instance_load.size(), sb.instance_load.size());
  for (std::size_t op = 0; op < sa.instance_load.size(); ++op) {
    EXPECT_EQ(sa.instance_load[op], sb.instance_load[op]) << op;
  }
  // Pair statistics feed reconfiguration: they must match too.
  const auto ha = sim.model().collect_hop_stats();
  const auto hb = twin.collect_hop_stats();
  ASSERT_EQ(ha.size(), hb.size());
  for (std::size_t h = 0; h < ha.size(); ++h) {
    ASSERT_EQ(ha[h].pairs.size(), hb[h].pairs.size()) << h;
    for (std::size_t p = 0; p < ha[h].pairs.size(); ++p) {
      EXPECT_EQ(ha[h].pairs[p].in, hb[h].pairs[p].in);
      EXPECT_EQ(ha[h].pairs[p].out, hb[h].pairs[p].out);
      EXPECT_EQ(ha[h].pairs[p].count, hb[h].pairs[p].count);
    }
  }
  EXPECT_EQ(report.window_tuples, sb.tuples);
}

// Deep stateless chains must not exhaust the C++ stack: the worklist deliver
// walks a 200-operator chain comfortably (the recursive version consumed a
// stack frame per hop).
TEST(Pipeline, DeepChainDeliversWithoutRecursion) {
  Topology topo;
  OperatorId prev = topo.add_operator(
      {.name = "src", .parallelism = 1, .is_source = true});
  constexpr int kDepth = 200;
  for (int d = 0; d < kDepth; ++d) {
    const OperatorId next =
        topo.add_operator({.name = "op" + std::to_string(d), .parallelism = 2});
    topo.connect(prev, next, GroupingType::kFields, /*key_field=*/0);
    prev = next;
  }
  const Placement place = Placement::round_robin(topo, 2);
  SimConfig cfg;
  cfg.source_mode = SourceMode::kRoundRobin;
  PipelineModel model(topo, place, cfg, FieldsRouting::kHash);
  FixedGenerator gen(Tuple{.fields = {9}, .padding = 0});
  for (int i = 0; i < 10; ++i) model.process(gen.next());
  const TrafficStats& s = model.stats();
  // Every hop saw every tuple exactly once.
  for (std::size_t e = 0; e < s.edge_traffic.size(); ++e) {
    EXPECT_EQ(s.edge_traffic[e].local + s.edge_traffic[e].remote, 10u) << e;
  }
}

}  // namespace
}  // namespace lar::sim
