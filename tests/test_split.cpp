// Tests for lar::split (DESIGN.md §14): hot-key split-degree selection,
// split-capable routing tables and routers (virtual + devirtualized bank),
// planner integration (replica placement, candidate-set migration diffs,
// snapshot v4), and the runtime exactly-once guarantees — merge conservation
// under chaos duplication/delay, split-state migration across waves, and
// crash recovery of replica partials with a checkpoint coordinator attached.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "chaos/fault_plan.hpp"
#include "chaos/injector.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/manager.hpp"
#include "core/snapshot.hpp"
#include "runtime/engine.hpp"
#include "sim/route_desc.hpp"
#include "sketch/exact_counter.hpp"
#include "sketch/zipf.hpp"
#include "split/degree.hpp"
#include "workload/workload.hpp"

namespace lar {
namespace {

using core::HopStats;
using core::PairCount;
using split::KeyDegree;
using split::OpInstances;

// --- fixtures ----------------------------------------------------------------

std::string temp_path(const char* name) {
  // Pid-qualified so concurrent invocations of this binary never collide.
  return (std::filesystem::temp_directory_path() /
          (std::to_string(::getpid()) + "_" + name))
      .string();
}

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// One hop 1 -> 2 where key 0 carries `heavy` mass and keys 1..n-1 carry
/// `light` each (out-keys offset by 1000 so the two key spaces stay apart).
std::vector<HopStats> skewed_stats(std::uint32_t n, std::uint64_t heavy,
                                   std::uint64_t light) {
  std::vector<PairCount> pairs;
  pairs.push_back(PairCount{0, 1000, heavy});
  for (std::uint32_t i = 1; i < n; ++i) {
    pairs.push_back(PairCount{i, 1000 + i, light});
  }
  return {HopStats{1, 2, pairs}};
}

/// Uniform mass: no key exceeds the balance cap.
std::vector<HopStats> uniform_stats(std::uint32_t n, std::uint64_t weight) {
  std::vector<PairCount> pairs;
  for (std::uint32_t i = 0; i < n; ++i) {
    pairs.push_back(PairCount{i, 1000 + i, weight});
  }
  return {HopStats{1, 2, pairs}};
}

// --- degree selection ---------------------------------------------------------

TEST(SplitDegrees, PureFunctionOfTheStatsSet) {
  std::vector<PairCount> pairs;
  Rng rng(11);
  for (std::uint32_t i = 0; i < 40; ++i) {
    pairs.push_back(PairCount{i % 8, 1000 + i, 1 + rng.below(500)});
  }
  const std::vector<OpInstances> insts{{1, 4}, {2, 4}};
  const split::SplitOptions opts{.max_degree = 4};
  std::vector<split::HopView> hops{{1, 2, &pairs}};
  const auto a = split::choose_degrees(hops, opts, 1.03, insts);

  std::vector<PairCount> reversed(pairs.rbegin(), pairs.rend());
  std::vector<split::HopView> rhops{{1, 2, &reversed}};
  const auto b = split::choose_degrees(rhops, opts, 1.03, insts);
  EXPECT_EQ(a, b);  // pure function of the *set*, not the order

  // Output is canonically sorted by (op, key).
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end(),
                             [](const KeyDegree& x, const KeyDegree& y) {
                               return x.op != y.op ? x.op < y.op
                                                   : x.key < y.key;
                             }));
}

TEST(SplitDegrees, UniformLoadSplitsNothing) {
  std::vector<PairCount> pairs;
  for (std::uint32_t i = 0; i < 32; ++i) {
    pairs.push_back(PairCount{i, 1000 + i, 100});
  }
  std::vector<split::HopView> hops{{1, 2, &pairs}};
  const auto degrees = split::choose_degrees(
      hops, {.max_degree = 8}, 1.03, {{1, 4}, {2, 4}});
  EXPECT_TRUE(degrees.empty());
}

TEST(SplitDegrees, DegreeTracksMassAndHonorsEveryCap) {
  // Key 0 carries ~76% of a 4-instance op's load: cap ~ 0.26 * total, so the
  // uncapped degree is ceil(0.76 / 0.26) = 3.
  std::vector<PairCount> pairs;
  pairs.push_back(PairCount{0, 1000, 7600});
  for (std::uint32_t i = 1; i < 25; ++i) {
    pairs.push_back(PairCount{i, 1000 + i, 100});
  }
  std::vector<split::HopView> hops{{1, 2, &pairs}};

  const auto full = split::choose_degrees(hops, {.max_degree = 8}, 1.03,
                                          {{1, 4}, {2, 4}});
  ASSERT_FALSE(full.empty());
  EXPECT_EQ(full.front().op, 1u);
  EXPECT_EQ(full.front().key, 0u);
  EXPECT_EQ(full.front().degree, 3u);

  // max_degree caps the choice.
  const auto capped = split::choose_degrees(hops, {.max_degree = 2}, 1.03,
                                            {{1, 4}, {2, 4}});
  ASSERT_FALSE(capped.empty());
  EXPECT_EQ(capped.front().degree, 2u);

  // The instance count caps it too: a 2-instance op cannot split 3 ways.
  const auto narrow = split::choose_degrees(hops, {.max_degree = 8}, 1.03,
                                            {{1, 2}, {2, 2}});
  ASSERT_FALSE(narrow.empty());
  EXPECT_LE(narrow.front().degree, 2u);

  // Single-instance ops never split, no matter the skew.
  const auto solo = split::choose_degrees(hops, {.max_degree = 8}, 1.03,
                                          {{1, 1}, {2, 1}});
  for (const KeyDegree& d : solo) EXPECT_NE(d.op, 1u);
}

TEST(SplitDegrees, MaxDegreeOneDisablesSelection) {
  std::vector<PairCount> pairs{{0, 1000, 100000}, {1, 1001, 1}};
  std::vector<split::HopView> hops{{1, 2, &pairs}};
  EXPECT_TRUE(split::choose_degrees(hops, {.max_degree = 1}, 1.03,
                                    {{1, 4}, {2, 4}})
                  .empty());
}

// --- routing table ------------------------------------------------------------

TEST(SplitTable, CandidateStorageAndOwnership) {
  RoutingTable t;
  t.assign(5, 1);
  const std::vector<InstanceIndex> cands{2, 0, 3};
  t.assign_split(7, cands);
  EXPECT_TRUE(t.has_splits());
  EXPECT_EQ(t.num_split_keys(), 1u);

  // Candidate order is preserved; the first candidate is the primary.
  const auto got = t.split_candidates(7);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), cands.begin()));
  EXPECT_EQ(t.route(7, 4), 2u);
  EXPECT_EQ(t.lookup(7).value(), 2u);

  // Ownership: any candidate owns a split key; only the routed instance owns
  // an unsplit one.
  for (const InstanceIndex c : cands) EXPECT_TRUE(t.is_owner(7, c, 4));
  EXPECT_FALSE(t.is_owner(7, 1, 4));
  EXPECT_TRUE(t.is_owner(5, 1, 4));
  EXPECT_FALSE(t.is_owner(5, 0, 4));

  // Unsplit keys expose no candidates.
  EXPECT_TRUE(t.split_candidates(5).empty());
  EXPECT_TRUE(t.split_candidates(999).empty());

  // Canonical split iteration is ascending by key.
  t.assign_split(3, std::vector<InstanceIndex>{1, 2});
  const auto entries = t.sorted_split_entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 3u);
  EXPECT_EQ(entries[1].first, 7u);
  EXPECT_EQ(entries[1].second, cands);
}

TEST(SplitTable, SnapshotRoundTripPreservesCandidates) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  core::ManagerOptions opts;
  opts.split.max_degree = 4;
  core::Manager mgr(topo, place, opts);
  const auto plan = mgr.compute_plan(skewed_stats(30, 8000, 10));
  ASSERT_GT(plan.keys_split, 0u);

  const std::string path = temp_path("lar_split_snapshot.larp");
  ASSERT_TRUE(core::save_plan(plan, path).is_ok());
  const auto restored = core::load_plan(path);
  ASSERT_TRUE(restored.is_ok());
  for (const auto& [op, table] : plan.tables) {
    const auto& rt = restored.value().tables.at(op);
    EXPECT_EQ(rt->num_split_keys(), table->num_split_keys());
    EXPECT_EQ(rt->sorted_split_entries(), table->sorted_split_entries());
    EXPECT_EQ(rt->sorted_entries(), table->sorted_entries());
  }
  std::filesystem::remove(path);
}

TEST(SplitTable, SplitlessPlansKeepThePreSplitSnapshotFormat) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  core::Manager mgr(topo, place, {});
  const auto plan = mgr.compute_plan(uniform_stats(24, 100));
  EXPECT_EQ(plan.keys_split, 0u);
  const std::string path = temp_path("lar_split_snapshot_v3.larp");
  ASSERT_TRUE(core::save_plan(plan, path).is_ok());
  const std::string bytes = read_all(path);
  ASSERT_GE(bytes.size(), 8u);
  // Bytes 4..7 hold the format field: splitless plans stay v3, so every
  // pre-split snapshot byte stream is reproduced exactly.
  std::uint32_t format = 0;
  std::memcpy(&format, bytes.data() + 4, sizeof(format));
  EXPECT_EQ(format, 3u);
  std::filesystem::remove(path);
}

// --- routers -----------------------------------------------------------------

TEST(SplitRouting, TableRouterRunsLeastLoadedOverTheCandidates) {
  auto table = std::make_shared<RoutingTable>();
  table->assign_split(7, std::vector<InstanceIndex>{1, 3});
  table->assign(5, 2);
  TableFieldsRouter r(0, 4, table);

  // Equal counters: the first-listed candidate wins the tie, then the
  // counters alternate the choices — PKG's discipline, d-generalized.
  Tuple hot{.fields = {7}, .padding = 0};
  EXPECT_EQ(r.route(hot), 1u);
  EXPECT_EQ(r.route(hot), 3u);
  EXPECT_EQ(r.route(hot), 1u);
  EXPECT_EQ(r.route(hot), 3u);

  // Unsplit keys are untouched by the discipline.
  Tuple cold{.fields = {5}, .padding = 0};
  EXPECT_EQ(r.route(cold), 2u);
  Tuple miss{.fields = {11}, .padding = 0};
  EXPECT_EQ(r.route(miss), hash_instance(11, 4));
}

TEST(SplitRouting, SentCountersResetDeterministicallyOnSwap) {
  auto table = std::make_shared<RoutingTable>();
  table->assign_split(7, std::vector<InstanceIndex>{0, 2, 3});
  TableFieldsRouter swapped(0, 4, table);
  Tuple hot{.fields = {7}, .padding = 0};
  for (int i = 0; i < 101; ++i) (void)swapped.route(hot);  // skew history

  // After the swap, the choice sequence equals a fresh router's: post-swap
  // decisions are a pure function of the new table and post-swap tuples.
  swapped.set_table(table);
  TableFieldsRouter fresh(0, 4, table);
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(swapped.route(hot), fresh.route(hot)) << "step " << i;
  }
}

TEST(SplitRouting, VirtualAndBankRoutersAgreeOnSplitTables) {
  const std::uint32_t n = 4;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  const EdgeSpec& edge = topo.edges()[1];

  auto table = std::make_shared<RoutingTable>();
  table->assign_split(3, std::vector<InstanceIndex>{0, 2});
  table->assign_split(9, std::vector<InstanceIndex>{1, 3, 0});
  table->assign(4, 2);

  TableFieldsRouter router(edge.key_field, n, table);
  sim::RouterBank bank;
  const std::uint32_t slot =
      bank.add(edge, 1, topo, place, place.server_of(edge.from, 0),
               FieldsRouting::kTable, table.get(), /*seed=*/9);

  Rng rng(404);
  for (int i = 0; i < 4000; ++i) {
    const Key k = rng.below(12);
    Tuple t{.fields = {0, k}, .padding = 0};
    ASSERT_EQ(bank.route(slot, t), router.route(t)) << "tuple " << i;
  }

  // Swapping resets both sides' counters the same way.
  auto table2 = std::make_shared<RoutingTable>();
  table2->assign_split(9, std::vector<InstanceIndex>{2, 1});
  router.set_table(table2);
  bank.set_table(slot, table2.get());
  for (int i = 0; i < 2000; ++i) {
    const Key k = rng.below(12);
    Tuple t{.fields = {0, k}, .padding = 0};
    ASSERT_EQ(bank.route(slot, t), router.route(t)) << "post-swap tuple " << i;
  }
}

// --- planner integration -----------------------------------------------------

TEST(SplitPlan, SkewedStatsYieldSplitTables) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  core::ManagerOptions opts;
  opts.split.max_degree = 4;
  core::Manager mgr(topo, place, opts);
  const auto plan = mgr.compute_plan(skewed_stats(30, 8000, 10));
  EXPECT_GT(plan.keys_split, 0u);
  EXPECT_GE(plan.max_split_degree, 2u);
  EXPECT_LE(plan.max_split_degree, 3u);  // capped by the 3-instance fleet

  std::size_t split_seen = 0;
  for (const auto& [op, table] : plan.tables) {
    const std::uint32_t parallelism = topo.op(op).parallelism;
    for (const auto& [key, cands] : table->sorted_split_entries()) {
      ++split_seen;
      ASSERT_GE(cands.size(), 2u);
      std::set<InstanceIndex> uniq(cands.begin(), cands.end());
      EXPECT_EQ(uniq.size(), cands.size()) << "key " << key;
      for (const InstanceIndex c : cands) EXPECT_LT(c, parallelism);
      // The primary candidate is the single-valued route target.
      EXPECT_EQ(table->route(key, parallelism), cands.front());
    }
  }
  EXPECT_EQ(split_seen, plan.keys_split);
}

TEST(SplitPlan, EnabledUnderTheCapIsByteIdenticalToDisabled) {
  // Splitting enabled but no key over the cap: the planner must emit the
  // exact plan the pre-split planner emits — pinned at snapshot-byte level.
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  core::Manager off(topo, place, {});
  core::ManagerOptions opts;
  opts.split.max_degree = 4;
  core::Manager on(topo, place, opts);

  const auto plan_off = off.compute_plan(uniform_stats(24, 100));
  const auto plan_on = on.compute_plan(uniform_stats(24, 100));
  EXPECT_EQ(plan_on.keys_split, 0u);
  const std::string pa = temp_path("lar_split_identity_off.larp");
  const std::string pb = temp_path("lar_split_identity_on.larp");
  ASSERT_TRUE(core::save_plan(plan_off, pa).is_ok());
  ASSERT_TRUE(core::save_plan(plan_on, pb).is_ok());
  EXPECT_EQ(read_all(pa), read_all(pb));
  std::filesystem::remove(pa);
  std::filesystem::remove(pb);
}

TEST(SplitPlan, DegreeDecreaseConsolidatesEveryReplica) {
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  core::ManagerOptions opts;
  opts.split.max_degree = 4;
  core::Manager mgr(topo, place, opts);

  const auto plan1 = mgr.compute_plan(skewed_stats(30, 8000, 10));
  ASSERT_GT(plan1.keys_split, 0u);
  mgr.mark_deployed(plan1);

  // The skew vanishes: the next plan splits nothing, and every replica of a
  // previously split key that is not the new owner ships its partial there.
  const auto plan2 = mgr.compute_plan(uniform_stats(30, 100));
  EXPECT_EQ(plan2.keys_split, 0u);
  for (const auto& [op, table] : plan1.tables) {
    const std::uint32_t parallelism = topo.op(op).parallelism;
    const auto& after = plan2.tables.at(op);
    const auto it = plan2.moves.find(op);
    for (const auto& [key, cands] : table->sorted_split_entries()) {
      const InstanceIndex dest = after->route(key, parallelism);
      std::size_t moved = 0;
      if (it != plan2.moves.end()) {
        for (const core::KeyMove& mv : it->second) {
          if (mv.key != key) continue;
          ++moved;
          EXPECT_EQ(mv.to, dest) << "key " << key;
          EXPECT_TRUE(std::find(cands.begin(), cands.end(), mv.from) !=
                      cands.end())
              << "move from a non-candidate, key " << key;
        }
      }
      const bool dest_was_candidate =
          std::find(cands.begin(), cands.end(), dest) != cands.end();
      EXPECT_EQ(moved, cands.size() - (dest_was_candidate ? 1 : 0))
          << "key " << key;
    }
  }
}

// --- runtime: split exactly-once ---------------------------------------------

/// Zipf-keyed tuples with `fields` copies of the sampled key — field 0
/// routes the first hop; a two-stage chain routes field 1 on the same key so
/// both stages see the same (heavy-hitter) key distribution.
class ZipfGenerator final : public workload::TupleGenerator {
 public:
  ZipfGenerator(std::size_t n, double s, std::uint64_t seed,
                std::uint32_t fields)
      : zipf_(n, s), rng_(seed), fields_(fields) {}

  [[nodiscard]] Tuple next() override {
    const Key k = static_cast<Key>(zipf_.sample(rng_));
    return Tuple{std::vector<Key>(fields_, k), 0};
  }

 private:
  sketch::ZipfSampler zipf_;
  Rng rng_;
  std::uint32_t fields_;
};

/// Source -> partial-aggregation stage -> merge stage, fields-routed on the
/// key at every hop (the partial stage emits `{key, delta}` tuples).
Topology make_split_topology(std::uint32_t n) {
  Topology t;
  const OperatorId s = t.add_operator({.name = "S",
                                       .parallelism = n,
                                       .stateful = false,
                                       .is_source = true,
                                       .cpu_cost_per_tuple = 0.05});
  const OperatorId partial =
      t.add_operator({.name = "partial", .parallelism = n, .stateful = true});
  const OperatorId merge =
      t.add_operator({.name = "merge", .parallelism = n, .stateful = true});
  t.connect(s, partial, GroupingType::kFields, /*key_field=*/0);
  t.connect(partial, merge, GroupingType::kFields, /*key_field=*/0);
  LAR_CHECK(t.validate().is_ok());
  return t;
}

runtime::OperatorFactory split_factory() {
  return [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
    if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
    if (op == 1) return std::make_unique<runtime::PartialCountOperator>(0);
    return std::make_unique<runtime::MergeCountOperator>(0, 1);
  };
}

/// Conservation without the single-holder requirement: split keys may hold
/// partials on several candidates, but the per-key sum across instances must
/// equal ground truth exactly — no tuple lost, none double-counted.
template <typename GetCount>
void expect_conserved(std::uint32_t par, const sketch::ExactCounter<Key>& truth,
                      GetCount&& count_at, int* multi_holder_keys = nullptr) {
  for (const auto& entry : truth.entries()) {
    std::uint64_t sum = 0;
    int holders = 0;
    for (InstanceIndex i = 0; i < par; ++i) {
      const std::uint64_t c = count_at(i, entry.key);
      sum += c;
      holders += (c > 0);
    }
    ASSERT_EQ(sum, entry.count) << "key " << entry.key;
    ASSERT_GE(holders, 1) << "key " << entry.key;
    if (multi_holder_keys != nullptr) *multi_holder_keys += (holders > 1);
  }
}

TEST(SplitEngine, MergeConservesEveryDeltaUnderChaosFaults) {
  const std::uint32_t n = 3;
  const Topology topo = make_split_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  chaos::FaultPlan fplan(811);
  fplan.set(chaos::FaultSite::kChannelDuplicate, {.rate = 0.02});
  fplan.set(chaos::FaultSite::kChannelDelay, {.rate = 0.02});
  chaos::Injector inj(fplan);
  runtime::Engine engine(topo, place, split_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .injector = &inj});
  engine.start();
  core::ManagerOptions opts;
  opts.split.max_degree = 3;
  core::Manager mgr(topo, place, opts);

  sketch::ExactCounter<Key> truth;
  // Pre-load a fully drained window before streaming live: gathered pair
  // statistics only count *processed* tuples, and under a free-running
  // feeder the head key's POI saturates — a saturated instance never
  // exceeds its 1/P fair share of processed traffic, which sits below the
  // alpha/P split cap by construction, so the head could (schedule-
  // dependently) never split.  The drained window records the true Zipf
  // head regardless of scheduling.
  ZipfGenerator gen(40, /*s=*/1.5, /*seed=*/71, /*fields=*/1);
  for (int i = 0; i < 12'000; ++i) {
    Tuple t = gen.next();
    truth.add(t.fields[0]);
    engine.inject(std::move(t));
  }
  engine.flush();
  std::atomic<bool> stop{false};
  std::thread feeder([&] {
    ZipfGenerator fgen(40, 1.5, 72, 1);
    while (!stop.load()) {
      Tuple t = fgen.next();
      truth.add(t.fields[0]);
      engine.inject(std::move(t));
    }
  });
  const auto plan1 = engine.reconfigure(mgr);  // splits the head, live
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  const auto plan2 = engine.reconfigure(mgr);  // second wave, split tables
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  stop = true;
  feeder.join();
  // A drained post-split batch guarantees head traffic through the
  // d-candidate tables even if the feeder thread was starved — the
  // multi-holder assertion below must not depend on scheduling.
  for (int i = 0; i < 3'000; ++i) {
    Tuple t = gen.next();
    truth.add(t.fields[0]);
    engine.inject(std::move(t));
  }
  engine.flush();

  // The Zipf head must actually have split.
  EXPECT_GT(plan1.keys_split, 0u);
  EXPECT_GT(plan2.version, plan1.version);
  EXPECT_GT(inj.fired(chaos::FaultSite::kChannelDuplicate), 0u);
  EXPECT_GT(inj.fired(chaos::FaultSite::kChannelDelay), 0u);

  // Partial replicas conserve the injected counts; merge totals reconstruct
  // them exactly despite duplicated and delayed channel traffic.
  int split_partials = 0;
  expect_conserved(
      n, truth,
      [&](InstanceIndex i, Key k) {
        return static_cast<runtime::PartialCountOperator&>(
                   engine.operator_at(1, i))
            .partial(k);
      },
      &split_partials);
  expect_conserved(n, truth, [&](InstanceIndex i, Key k) {
    return static_cast<runtime::MergeCountOperator&>(engine.operator_at(2, i))
        .total(k);
  });
  // The drained batch routed through plan2's tables.  Normally plan2 keeps
  // the head split and >= 2 replicas hold partials; under heavy scheduling
  // starvation plan2's window can under-observe the head (a saturated POI
  // caps at its 1/P fair share) and legitimately converge the replicas —
  // then every partial must be back on a single holder.
  std::size_t final_splits = 0;
  for (const auto& [op, table] : plan2.tables) {
    final_splits += table->num_split_keys();
  }
  if (final_splits > 0) {
    EXPECT_GT(split_partials, 0);  // at least one key ran as >= 2 replicas
  } else {
    EXPECT_EQ(split_partials, 0);  // degree decrease consolidated them all
  }
  const auto m = engine.metrics();
  EXPECT_EQ(m.data_dups_dropped, inj.fired(chaos::FaultSite::kChannelDuplicate));
  engine.shutdown();
}

TEST(SplitEngine, WaveMigratesSplitStateAcrossDegreeChanges) {
  // Degree increase (hot key splits) and decrease (replicas converge) across
  // live reconfiguration waves, with counting state conserved throughout.
  const std::uint32_t n = 3;
  const Topology topo = make_two_stage_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  runtime::Engine engine(
      topo, place,
      [](OperatorId op, InstanceIndex) -> std::unique_ptr<runtime::Operator> {
        if (op == 0) return std::make_unique<runtime::PassThroughOperator>();
        return std::make_unique<runtime::CountingOperator>(op == 1 ? 0 : 1);
      },
      {.fields_mode = FieldsRouting::kTable});
  engine.start();
  core::ManagerOptions opts;
  opts.split.max_degree = 3;
  core::Manager mgr(topo, place, opts);

  sketch::ExactCounter<Key> truth0;
  sketch::ExactCounter<Key> truth1;
  auto pump = [&](workload::TupleGenerator& gen, int count) {
    for (int i = 0; i < count; ++i) {
      Tuple t = gen.next();
      truth0.add(t.fields[0]);
      truth1.add(t.fields[1]);
      engine.inject(std::move(t));
    }
    engine.flush();
  };
  auto counts_conserved = [&](int* multi = nullptr) {
    expect_conserved(
        n, truth0,
        [&](InstanceIndex i, Key k) {
          return static_cast<runtime::CountingOperator&>(engine.operator_at(1, i))
              .count(k);
        },
        multi);
    expect_conserved(n, truth1, [&](InstanceIndex i, Key k) {
      return static_cast<runtime::CountingOperator&>(engine.operator_at(2, i))
          .count(k);
    });
  };

  // Round 1: heavy skew -> the wave deploys split tables (degree increase).
  ZipfGenerator skewed(40, /*s=*/1.5, /*seed=*/81, /*fields=*/2);
  pump(skewed, 20'000);
  const auto plan1 = engine.reconfigure(mgr);
  ASSERT_GT(plan1.keys_split, 0u);
  counts_conserved();

  // Keep streaming skewed: replicas accumulate genuinely partial state.
  pump(skewed, 20'000);
  int multi_holders = 0;
  counts_conserved(&multi_holders);
  EXPECT_GT(multi_holders, 0);  // the hot key really ran split

  // Round 2: skew vanishes -> degree decrease; the wave must converge every
  // replica's partial onto the new single owner (one MIGRATE per sender).
  ZipfGenerator uniform(40, /*s=*/0.0, /*seed=*/82, /*fields=*/2);
  pump(uniform, 20'000);
  const auto plan2 = engine.reconfigure(mgr);
  EXPECT_EQ(plan2.keys_split, 0u);
  pump(uniform, 5'000);
  counts_conserved();

  // Post-decrease, every key is single-holder again: the replicas' partials
  // merged additively on exactly one instance.
  for (const auto& entry : truth0.entries()) {
    int holders = 0;
    for (InstanceIndex i = 0; i < n; ++i) {
      holders += static_cast<runtime::CountingOperator&>(engine.operator_at(1, i))
                     .count(entry.key) > 0;
    }
    EXPECT_EQ(holders, 1) << "key " << entry.key << " still split";
  }
  engine.shutdown();
}

TEST(SplitEngine, CrashRecoveryRestoresReplicaPartials) {
  const std::uint32_t n = 3;
  const Topology topo = make_split_topology(n);
  const Placement place = Placement::round_robin(topo, n);
  ckpt::CheckpointCoordinator coord;
  runtime::Engine engine(topo, place, split_factory(),
                         {.fields_mode = FieldsRouting::kTable,
                          .checkpoint = &coord});
  engine.start();
  core::ManagerOptions opts;
  opts.split.max_degree = 3;
  core::Manager mgr(topo, place, opts);

  sketch::ExactCounter<Key> truth;
  ZipfGenerator gen(40, /*s=*/1.5, /*seed=*/91, /*fields=*/1);
  auto pump = [&](int count) {
    for (int i = 0; i < count; ++i) {
      Tuple t = gen.next();
      truth.add(t.fields[0]);
      engine.inject(std::move(t));
    }
    engine.flush();
  };

  pump(15'000);
  const auto plan = engine.reconfigure(mgr);  // split deploy + auto-checkpoint
  ASSERT_GT(plan.keys_split, 0u);
  pump(6'000);
  engine.checkpoint();  // replica partials snapshotted mid-split
  pump(4'000);
  engine.crash_and_recover(1);
  pump(3'000);
  engine.flush();

  int split_partials = 0;
  expect_conserved(
      n, truth,
      [&](InstanceIndex i, Key k) {
        return static_cast<runtime::PartialCountOperator&>(
                   engine.operator_at(1, i))
            .partial(k);
      },
      &split_partials);
  expect_conserved(n, truth, [&](InstanceIndex i, Key k) {
    return static_cast<runtime::MergeCountOperator&>(engine.operator_at(2, i))
        .total(k);
  });
  EXPECT_GT(split_partials, 0);
  const auto m = engine.metrics();
  EXPECT_EQ(m.crashes, 1u);
  EXPECT_GT(m.states_restored, 0u);
  engine.shutdown();
}

}  // namespace
}  // namespace lar
