// Unit and statistical tests for the workload generators and trace I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <unordered_map>

#include "workload/flickr_like.hpp"
#include "workload/synthetic.hpp"
#include "workload/trace.hpp"
#include "workload/twitter_like.hpp"

namespace lar::workload {
namespace {

// --- synthetic --------------------------------------------------------------

TEST(Synthetic, FieldsStayInTheirKeySpaces) {
  SyntheticGenerator gen({.num_values = 8, .locality = 0.5, .padding = 3,
                          .seed = 1});
  for (int i = 0; i < 1000; ++i) {
    const Tuple t = gen.next();
    ASSERT_EQ(t.fields.size(), 2u);
    EXPECT_LT(t.fields[0], 8u);
    EXPECT_GE(t.fields[1], 8u);
    EXPECT_LT(t.fields[1], 16u);
    EXPECT_EQ(t.padding, 3u);
  }
}

class SyntheticLocality : public ::testing::TestWithParam<double> {};

TEST_P(SyntheticLocality, EmpiricalLocalityMatchesParameter) {
  const double locality = GetParam();
  SyntheticGenerator gen(
      {.num_values = 12, .locality = locality, .padding = 0, .seed = 9});
  int equal = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const Tuple t = gen.next();
    equal += (t.fields[1] - 12 == t.fields[0]);
  }
  EXPECT_NEAR(equal / static_cast<double>(n), locality, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SyntheticLocality,
                         ::testing::Values(0.0, 0.3, 0.6, 0.8, 0.95, 1.0));

TEST(Synthetic, DeterministicUnderSeed) {
  SyntheticGenerator a({.num_values = 4, .locality = 0.5, .padding = 0, .seed = 7});
  SyntheticGenerator b({.num_values = 4, .locality = 0.5, .padding = 0, .seed = 7});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next().fields, b.next().fields);
  }
}

TEST(Synthetic, SingleValueAlwaysCorrelated) {
  SyntheticGenerator gen({.num_values = 1, .locality = 0.0, .padding = 0, .seed = 2});
  for (int i = 0; i < 50; ++i) {
    const Tuple t = gen.next();
    EXPECT_EQ(t.fields[0], 0u);
    EXPECT_EQ(t.fields[1], 1u);  // 1 * num_values + 0
  }
}

TEST(Synthetic, FirstFieldUniform) {
  SyntheticGenerator gen({.num_values = 5, .locality = 0.7, .padding = 0, .seed = 3});
  std::array<int, 5> hits{};
  for (int i = 0; i < 50'000; ++i) ++hits[gen.next().fields[0]];
  for (const int h : hits) EXPECT_NEAR(h, 10'000, 600);
}

// --- twitter-like -----------------------------------------------------------

TwitterLikeConfig small_twitter() {
  TwitterLikeConfig cfg;
  cfg.num_locations = 50;
  cfg.num_hashtags = 500;
  cfg.new_keys_per_epoch = 100;
  cfg.seed = 4;
  return cfg;
}

TEST(TwitterLike, TupleShapeAndKeySpaces) {
  TwitterLikeGenerator gen(small_twitter());
  for (int i = 0; i < 1000; ++i) {
    const Tuple t = gen.next();
    ASSERT_EQ(t.fields.size(), 2u);
    EXPECT_LT(t.fields[0], 50u);               // location
    EXPECT_GE(t.fields[1], kHashtagKeyBase);   // hashtag
  }
}

TEST(TwitterLike, StableHomesSurviveEpochs) {
  TwitterLikeGenerator gen(small_twitter());
  std::vector<Key> before;
  for (std::uint32_t h = 0; h < 20; ++h) before.push_back(gen.stable_home(h));
  gen.advance_epoch();
  gen.advance_epoch();
  for (std::uint32_t h = 0; h < 20; ++h) {
    EXPECT_EQ(gen.stable_home(h), before[h]);
  }
}

TEST(TwitterLike, TransientHomesChurnGradually) {
  TwitterLikeConfig cfg = small_twitter();
  cfg.transient_churn = 0.4;
  TwitterLikeGenerator gen(cfg);
  std::vector<Key> before;
  for (std::uint32_t h = 0; h < 500; ++h) before.push_back(gen.transient_home(h));
  gen.advance_epoch();
  int changed = 0;
  for (std::uint32_t h = 0; h < 500; ++h) {
    changed += (gen.transient_home(h) != before[h]);
  }
  // ~40% re-rolled (minus Zipf re-draw collisions), the rest persists —
  // gradual drift is what makes online reconfiguration worthwhile.
  EXPECT_GT(changed, 100);
  EXPECT_LT(changed, 300);
}

TEST(TwitterLike, CorrelationIsMeasurable) {
  TwitterLikeConfig cfg = small_twitter();
  cfg.new_key_fraction = 0.0;
  TwitterLikeGenerator gen(cfg);
  int at_home = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const Tuple t = gen.next();
    const auto tag = static_cast<std::uint32_t>(t.fields[1] - kHashtagKeyBase);
    at_home += (t.fields[0] == gen.stable_home(tag) ||
                t.fields[0] == gen.transient_home(tag));
  }
  // At least the explicitly correlated fraction, plus Zipf coincidences.
  const double expected =
      cfg.stable_correlation + cfg.transient_correlation;
  EXPECT_GT(at_home / static_cast<double>(n), expected);
}

TEST(TwitterLike, FreshBlocksAreDisjointAcrossEpochs) {
  TwitterLikeGenerator gen(small_twitter());
  const auto [b0_first, b0_last] = gen.block_key_range(0);
  const auto [b1_first, b1_last] = gen.block_key_range(1);
  EXPECT_EQ(b0_last, b1_first);
  EXPECT_LT(b0_first, b0_last);
}

TEST(TwitterLike, FreshKeysPersistIntoRecentPool) {
  // A hashtag born in week 0 must still circulate in week 1 — that is what
  // lets online reconfiguration (but never a week-0 offline table) route it.
  TwitterLikeConfig cfg = small_twitter();
  cfg.new_key_fraction = 0.3;
  cfg.recent_fraction = 0.3;
  TwitterLikeGenerator gen(cfg);
  const auto [b0_first, b0_last] = gen.block_key_range(0);
  gen.advance_epoch();
  int block0_draws = 0;
  int block1_draws = 0;
  const auto [b1_first, b1_last] = gen.block_key_range(1);
  for (int i = 0; i < 10'000; ++i) {
    const Key tag = gen.next().fields[1];
    block0_draws += (tag >= b0_first && tag < b0_last);
    block1_draws += (tag >= b1_first && tag < b1_last);
  }
  EXPECT_NEAR(block0_draws / 10'000.0, 0.3, 0.03);  // recent pool
  EXPECT_NEAR(block1_draws / 10'000.0, 0.3, 0.03);  // current fresh block
}

TEST(TwitterLike, DeterministicUnderSeed) {
  TwitterLikeGenerator a(small_twitter());
  TwitterLikeGenerator b(small_twitter());
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.next().fields, b.next().fields);
}

// --- flickr-like ------------------------------------------------------------

FlickrLikeConfig small_flickr() {
  FlickrLikeConfig cfg;
  cfg.num_tags = 1000;
  cfg.num_countries = 40;
  cfg.seed = 8;
  return cfg;
}

TEST(FlickrLike, TupleShape) {
  FlickrLikeGenerator gen(small_flickr());
  for (int i = 0; i < 500; ++i) {
    const Tuple t = gen.next();
    ASSERT_EQ(t.fields.size(), 2u);
    EXPECT_LT(t.fields[0], 1000u);
    EXPECT_GE(t.fields[1], kCountryKeyBase);
  }
}

TEST(FlickrLike, CorrelationMatchesConfig) {
  FlickrLikeConfig cfg = small_flickr();
  cfg.correlation = 0.7;
  FlickrLikeGenerator gen(cfg);
  int at_home = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const Tuple t = gen.next();
    at_home +=
        (t.fields[1] == gen.home_country(static_cast<std::uint32_t>(t.fields[0])));
  }
  // correlation + Zipf coincidence of the uncorrelated remainder.
  EXPECT_GT(at_home / static_cast<double>(n), 0.69);
  EXPECT_LT(at_home / static_cast<double>(n), 0.82);
}

TEST(FlickrLike, StableOverTime) {
  FlickrLikeGenerator gen(small_flickr());
  const Key before = gen.home_country(3);
  gen.advance_epoch();  // must be a no-op
  EXPECT_EQ(gen.home_country(3), before);
}

// --- trace ------------------------------------------------------------------

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Trace, RoundTrip) {
  const std::string path = temp_path("lar_trace_roundtrip.bin");
  SyntheticGenerator gen({.num_values = 6, .locality = 0.5, .padding = 17, .seed = 1});
  std::vector<Tuple> originals;
  {
    TraceWriter writer(path);
    ASSERT_TRUE(writer.status().is_ok());
    for (int i = 0; i < 100; ++i) {
      originals.push_back(gen.next());
      writer.write(originals.back());
    }
    writer.close();
    EXPECT_EQ(writer.tuples_written(), 100u);
  }
  TraceReader reader(path);
  ASSERT_TRUE(reader.status().is_ok());
  EXPECT_EQ(reader.num_tuples(), 100u);
  for (int i = 0; i < 100; ++i) {
    const Tuple t = reader.next();
    EXPECT_EQ(t.fields, originals[i].fields);
    EXPECT_EQ(t.padding, originals[i].padding);
  }
  std::filesystem::remove(path);
}

TEST(Trace, WrapsAroundWhenExhausted) {
  const std::string path = temp_path("lar_trace_wrap.bin");
  {
    TraceWriter writer(path);
    writer.write(Tuple{.fields = {1, 2}, .padding = 0});
    writer.write(Tuple{.fields = {3, 4}, .padding = 0});
  }
  TraceReader reader(path);
  ASSERT_TRUE(reader.status().is_ok());
  EXPECT_EQ(reader.next().fields[0], 1u);
  EXPECT_EQ(reader.next().fields[0], 3u);
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(reader.next().fields[0], 1u);  // wrapped
  std::filesystem::remove(path);
}

TEST(Trace, RecordTraceHelper) {
  const std::string path = temp_path("lar_trace_helper.bin");
  SyntheticGenerator gen({.num_values = 3, .locality = 1.0, .padding = 0, .seed = 5});
  ASSERT_TRUE(record_trace(gen, 50, path).is_ok());
  TraceReader reader(path);
  EXPECT_EQ(reader.num_tuples(), 50u);
  std::filesystem::remove(path);
}

TEST(Trace, MissingFileReportsNotFound) {
  TraceReader reader("/nonexistent/path/trace.bin");
  EXPECT_FALSE(reader.status().is_ok());
  EXPECT_EQ(reader.status().code(), ErrorCode::kNotFound);
}

TEST(Trace, GarbageFileRejected) {
  const std::string path = temp_path("lar_trace_garbage.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fwrite("not a trace at all", 1, 18, f);
    std::fclose(f);
  }
  TraceReader reader(path);
  EXPECT_FALSE(reader.status().is_ok());
  EXPECT_EQ(reader.status().code(), ErrorCode::kInvalidArgument);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace lar::workload
